// Package koorde implements the Koorde distributed hash table
// (Kaashoek & Karger, IPTPS 2003): Chord's ring embedded with de
// Bruijn graph edges. Each node keeps the usual successor list for
// correctness plus a small *de Bruijn pointer set* around the node
// preceding 2^b·m, and routes by walking an imaginary de Bruijn node
// that corrects b key bits per hop — O(log n / log b) hops against
// Chord's O(log n), with the degree d = 2^b behind one knob.
//
// The implementation layers on the chord substrate rather than
// re-deriving ring maintenance: a koorde.Node owns a chord.Node that
// handles join/stabilize/notify/successor repair (and whose greedy
// routing serves maintenance lookups), while every APPLICATION payload
// routes over the de Bruijn edges via Route. That split keeps the ring
// self-healing machinery identical to the other deployments — so
// internal/ringcheck's invariants apply unchanged — and makes the
// measured hop counts a pure comparison of routing geometries.
package koorde

import (
	"errors"
	"fmt"

	"flowercdn/internal/chord"
	"flowercdn/internal/ids"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Config tunes the overlay.
type Config struct {
	// Chord configures the underlying ring substrate (maintenance
	// cadence, successor list length, routing TTL).
	Chord chord.Config
	// DegreeBits is b: each de Bruijn hop corrects b key bits, giving
	// degree d = 2^b. The successor list should hold at least ~2^b
	// entries or the imaginary walk pays correction hops (the pointer
	// set spans one predecessor plus one successor list).
	DegreeBits int
	// FixInterval is the de Bruijn pointer refresh period.
	FixInterval int64
}

// DefaultDegreeBits is the default b: degree 16, correcting 4 bits per
// hop — at the repo's quick scale (~400 peers, ≈9 significant key
// bits after the imaginary-start embedding) that is 2-3 de Bruijn hops
// per lookup versus Chord's ~log2(n)/2 finger hops.
const DefaultDegreeBits = 4

// DefaultConfig returns paper-churn-scale parameters layered over
// chord.DefaultConfig. The successor list is widened to 2^b+4 entries:
// it doubles as the tail of the de Bruijn pointer set, which must span
// the ~2^b ring positions an imaginary hop can land across.
func DefaultConfig() Config {
	return configFrom(chord.DefaultConfig(), 40*runtime.Second)
}

// DemoConfig returns the compressed-timescale variant for wall-clock
// demos, mirroring chord.DemoConfig.
func DemoConfig() Config {
	return configFrom(chord.DemoConfig(), 400*runtime.Millisecond)
}

func configFrom(base chord.Config, fix int64) Config {
	cfg := Config{Chord: base, DegreeBits: DefaultDegreeBits, FixInterval: fix}
	cfg.Chord.SuccessorListLen = succListFor(cfg.DegreeBits, base.SuccessorListLen)
	return cfg
}

// succListFor widens the substrate's successor list to cover one de
// Bruijn fan-out.
func succListFor(degreeBits, baseLen int) int {
	want := 1<<degreeBits + 4
	if want < baseLen {
		return baseLen
	}
	return want
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if err := c.Chord.Validate(); err != nil {
		return fmt.Errorf("koorde: %w", err)
	}
	switch c.DegreeBits {
	case 1, 2, 4, 8:
		// The imaginary walk consumes the 64-bit key in b-bit digits;
		// b must divide the key width or the last digit would be
		// partial, landing outside the arc the pointer set covers.
	default:
		return fmt.Errorf("koorde: degree bits %d not in {1, 2, 4, 8}", c.DegreeBits)
	}
	if c.FixInterval <= 0 {
		return errors.New("koorde: fix interval must be positive")
	}
	return nil
}

// ---- wire messages ----

func init() {
	runtime.RegisterWireType(dbRouteMsg{})
}

// dbRouteMsg is one in-flight de Bruijn-routed payload. I is the
// imaginary de Bruijn node the message walks; KShift holds the key
// bits not yet injected into I, left-aligned; BitsLeft counts them.
// Once BitsLeft reaches 0, I equals Key and the walk degenerates into
// a plain successor walk to the owner.
type dbRouteMsg struct {
	Key      ids.ID
	I        ids.ID
	KShift   uint64
	BitsLeft int
	Payload  any
	Origin   runtime.NodeID
	Hops     int
	Deliver  bool // set on the final hop: receiver is the owner
	// Traced marks a traced query: every forwarding appends a HopRoute
	// to Path (untraced messages never touch Path).
	Traced bool
	Path   []trace.Hop
}

// App receives application payloads routed over the de Bruijn edges —
// the same contract as chord.App.
type App = chord.App

// Node is one Koorde ring member: a chord substrate node plus the de
// Bruijn pointer set and routing.
type Node struct {
	cfg  Config
	net  runtime.Transport
	eng  runtime.Clock
	rng  *rnd.RNG
	app  App
	ring *chord.Node

	// dbSet is the de Bruijn pointer candidate set: the predecessor of
	// self.ID << b, then its ring successors — consecutive members
	// spanning the arc an imaginary hop from (self, succ] can land in.
	dbSet []chord.Entry

	fix     runtime.Ticker
	stopped bool
}

// ringApp adapts the substrate's App callback: nothing routes payloads
// over chord edges in a koorde deployment, but the substrate requires
// an App and forwarding keeps the node well-behaved if something does.
type ringApp struct{ n *Node }

func (a ringApp) OnRouted(key ids.ID, payload any, origin runtime.NodeID, hops int, path []trace.Hop) {
	if a.n.app != nil {
		a.n.app.OnRouted(key, payload, origin, hops, path)
	}
}

// NewNode constructs a ring member for the application peer at nodeID
// sitting at ring position ringID. Call Create or Join to enter a
// ring, then deliver all overlay traffic via HandleMessage /
// HandleRequest.
func NewNode(cfg Config, net runtime.Transport, rng *rnd.RNG, app App, nodeID runtime.NodeID, ringID ids.ID) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if app == nil {
		return nil, errors.New("koorde: nil app")
	}
	n := &Node{cfg: cfg, net: net, eng: net.Clock(), rng: rng, app: app}
	ring, err := chord.NewNode(cfg.Chord, net, rng.Split("ring"), ringApp{n}, nodeID, ringID)
	if err != nil {
		return nil, err
	}
	n.ring = ring
	return n, nil
}

// Self returns this node's ring entry.
func (n *Node) Self() chord.Entry { return n.ring.Self() }

// Successor returns the immediate successor (self on a fresh ring).
func (n *Node) Successor() chord.Entry { return n.ring.Successor() }

// SuccessorList returns a copy of the substrate's successor list.
func (n *Node) SuccessorList() []chord.Entry { return n.ring.SuccessorList() }

// Predecessor returns the current predecessor (possibly NoEntry).
func (n *Node) Predecessor() chord.Entry { return n.ring.Predecessor() }

// Stopped reports whether Stop was called.
func (n *Node) Stopped() bool { return n.stopped }

// Pointers returns a copy of the de Bruijn pointer candidate set.
func (n *Node) Pointers() []chord.Entry {
	out := make([]chord.Entry, len(n.dbSet))
	copy(out, n.dbSet)
	return out
}

// DeBruijnTarget is the position whose ring predecessor anchors this
// node's pointer set: self.ID shifted left by b bits.
func (n *Node) DeBruijnTarget() ids.ID {
	return ids.ID(uint64(n.ring.Self().ID) << n.cfg.DegreeBits)
}

// Create starts a brand-new ring with this node as its only member.
func (n *Node) Create() {
	n.ring.Create()
	n.startFix()
}

// Join enters the ring known through gateway; cb runs once.
func (n *Node) Join(gateway chord.Entry, cb func(error)) {
	n.ring.Join(gateway, func(err error) {
		if err == nil && !n.stopped {
			n.startFix()
		}
		cb(err)
	})
}

// Stop cancels all maintenance.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	if n.fix != nil {
		n.fix.Cancel()
	}
	n.ring.Stop()
}

func (n *Node) startFix() {
	n.fixPointers()
	n.fix = n.eng.Every(n.rng.UniformDuration(0, n.cfg.FixInterval), n.cfg.FixInterval, n.fixPointers)
}

// fixPointers refreshes the de Bruijn pointer set: resolve the owner of
// self.ID << b through the substrate (maintenance uses the substrate's
// own routing so pointer repair never depends on the health of the
// edges being repaired), then pull its neighborhood in one RPC. The
// owner's predecessor is the canonical pointer d = predecessor(2^b·m);
// the owner and its successor list extend the set across the arc a de
// Bruijn hop can land in.
func (n *Node) fixPointers() {
	if n.stopped {
		return
	}
	n.ring.Lookup(n.DeBruijnTarget(), func(owner chord.Entry, _ int, err error) {
		if n.stopped || err != nil || !owner.Valid() {
			return
		}
		if owner.Node == n.ring.Self().Node {
			// We own our own de Bruijn image; our successor list already
			// spans the landing arc.
			set := []chord.Entry{n.ring.Self()}
			n.dbSet = appendDistinct(set, n.ring.SuccessorList())
			return
		}
		n.ring.Neighbors(owner, func(pred chord.Entry, succs []chord.Entry, err error) {
			if n.stopped || err != nil {
				return
			}
			var set []chord.Entry
			if pred.Valid() {
				set = append(set, pred)
			}
			set = appendDistinct(set, []chord.Entry{owner})
			n.dbSet = appendDistinct(set, succs)
		})
	})
}

func appendDistinct(set []chord.Entry, more []chord.Entry) []chord.Entry {
	for _, e := range more {
		if !e.Valid() {
			continue
		}
		dup := false
		for _, have := range set {
			if have.Node == e.Node {
				dup = true
				break
			}
		}
		if !dup {
			set = append(set, e)
		}
	}
	return set
}

// Route forwards an application payload to the owner of key over the de
// Bruijn edges; the owner's App.OnRouted fires. Best-effort one-way,
// like chord.Route: a lost message is recovered by the application's
// own retry.
func (n *Node) Route(key ids.ID, payload any) {
	self, succ := n.ring.Self(), n.ring.Successor()
	i, kshift, bits := imaginaryStart(self.ID, succ.ID, key, n.cfg.DegreeBits)
	n.routeStep(dbRouteMsg{
		Key: key, I: i, KShift: kshift, BitsLeft: bits,
		Payload: payload, Origin: self.Node,
	})
}

// RouteTraced is Route with hop tracing: path (owned by the message
// from here on) accumulates one HopRoute per de Bruijn / correction
// forwarding and arrives at the owner's OnRouted.
func (n *Node) RouteTraced(key ids.ID, payload any, path []trace.Hop) {
	self, succ := n.ring.Self(), n.ring.Successor()
	i, kshift, bits := imaginaryStart(self.ID, succ.ID, key, n.cfg.DegreeBits)
	n.routeStep(dbRouteMsg{
		Key: key, I: i, KShift: kshift, BitsLeft: bits,
		Payload: payload, Origin: self.Node,
		Traced: true, Path: path,
	})
}

// imaginaryStart picks the imaginary de Bruijn node i the walk begins
// at: the position in (self, succ] whose low-order bits embed the most
// high-order key bits (Koorde §3's "best imaginary node" optimization).
// It returns i, the remaining key bits left-aligned, and their count;
// injecting all remaining bits into i yields exactly key.
//
// The embedded bit count t is constrained so the remainder is a whole
// number of b-bit digits: every subsequent injection then shifts by
// exactly b, keeping each hop's image inside the arc the receiving
// node's pointer set (anchored at predecessor(self << b)) actually
// covers. A partial final digit would shift by s < b and land near
// self << s — a different region entirely — costing a long correction
// walk on the very last hop.
func imaginaryStart(self, succ, key ids.ID, b int) (ids.ID, uint64, int) {
	if succ == self {
		// Single-node ring: routing delivers locally before consulting i.
		return key, 0, 0
	}
	arc := ids.Distance(self, succ)
	for t := ids.Bits; t > 0; t -= b {
		// top t bits of key, as a value in [0, 2^t)
		top := uint64(key) >> (ids.Bits - t)
		var step uint64
		if t == ids.Bits {
			step = uint64(key) - uint64(self)
		} else {
			mod := uint64(1) << t
			step = (top - uint64(self)) & (mod - 1)
			if step == 0 {
				step = mod
			}
		}
		if step == 0 || step > arc {
			continue // no position ≡ top (mod 2^t) inside (self, succ]
		}
		return ids.ID(uint64(self) + step), uint64(key) << t, ids.Bits - t
	}
	// t = 0 always admits self+1 ∈ (self, succ]: inject all 64 bits.
	return ids.ID(uint64(self) + 1), uint64(key), ids.Bits
}

// routeStep implements one step of imulate-style de Bruijn routing
// (Koorde fig. 3, generalized to degree 2^b): deliver when the key
// falls on our successor's arc; take a de Bruijn hop — inject the next
// b key bits into the imaginary node and jump through the pointer set
// — when the imaginary node is ours to host; otherwise walk the
// successor edge to correct the landing position.
func (n *Node) routeStep(m dbRouteMsg) {
	if n.stopped {
		return
	}
	if m.Deliver {
		n.deliver(m)
		return
	}
	if m.Hops >= n.cfg.Chord.MaxHops {
		return // TTL exceeded: drop; the application's retry recovers
	}
	self := n.ring.Self()
	succ := n.ring.Successor()
	// Single-node ring or self-owned key: deliver locally.
	if succ.Node == self.Node || m.Key == self.ID {
		n.deliver(m)
		return
	}
	if ids.BetweenRightIncl(m.Key, self.ID, succ.ID) {
		// Our successor owns the key: final hop.
		m.Deliver = true
		m.Hops++
		n.traceForward(&m, succ.Node)
		n.net.Send(self.Node, succ.Node, m)
		return
	}
	if m.BitsLeft > 0 && (m.I == self.ID || ids.BetweenRightIncl(m.I, self.ID, succ.ID)) {
		// The imaginary node lives on our arc: de Bruijn hop. Inject the
		// next s key bits and jump to the best-known predecessor of the
		// shifted image. The cursor math is node-independent, so a stale
		// or missing pointer only costs correction hops, never
		// correctness.
		s := n.cfg.DegreeBits
		if s > m.BitsLeft {
			s = m.BitsLeft
		}
		m.I = ids.ID(uint64(m.I)<<s | m.KShift>>(ids.Bits-s))
		m.KShift <<= s
		m.BitsLeft -= s
		if m.BitsLeft == 0 {
			// Last digit injected: the imaginary node IS the key. The
			// pointer set holds ring-consecutive members, so if a pair
			// flanks the key we know its successor and can deliver in
			// one hop instead of descending to the owner's predecessor.
			if owner := n.ownerInSet(m.Key); owner.Valid() {
				if owner.Node == self.Node {
					n.deliver(m)
					return
				}
				m.Deliver = true
				m.Hops++
				n.traceForward(&m, owner.Node)
				n.net.Send(self.Node, owner.Node, m)
				return
			}
		}
		if next := n.bestPointer(m.I); next.Valid() && next.Node != self.Node {
			m.Hops++
			n.traceForward(&m, next.Node)
			n.net.Send(self.Node, next.Node, m)
			return
		}
		// No usable pointer yet (bootstrap, or the whole set died):
		// fall through to the correction walk, which still converges.
	}
	// Correction walk toward the imaginary node (or the key itself once
	// every bit is injected): jump as far along the ring as the
	// successor list and pointer set allow rather than one successor at
	// a time.
	goal := m.I
	if m.BitsLeft == 0 {
		goal = m.Key
	}
	next := n.nextToward(goal)
	if !next.Valid() {
		return // no live neighbor at all: drop; the application retries
	}
	m.Hops++
	n.traceForward(&m, next.Node)
	n.net.Send(self.Node, next.Node, m)
}

// traceForward records one overlay forwarding on a traced message —
// kept beside the Hops increments so the traced path's HopRoute count
// equals Hops by construction.
func (n *Node) traceForward(m *dbRouteMsg, dest runtime.NodeID) {
	if !m.Traced {
		return
	}
	m.Path = trace.Append(m.Path, trace.Hop{
		Kind: trace.HopRoute,
		Node: dest,
		Loc:  n.net.Locality(dest),
		At:   n.eng.Now(),
	})
}

// ownerInSet scans ring-consecutive pointer-set pairs for one flanking
// key; the right member of such a pair is the key's successor as of the
// last pointer fix. NoEntry when the set does not span the key.
func (n *Node) ownerInSet(key ids.ID) chord.Entry {
	for i := 0; i+1 < len(n.dbSet); i++ {
		if ids.BetweenRightIncl(key, n.dbSet[i].ID, n.dbSet[i+1].ID) {
			return n.dbSet[i+1]
		}
	}
	return chord.NoEntry
}

// nextToward picks the known node closest behind goal — successor-list
// entries and de Bruijn pointers both qualify — so a correction walk
// covers many ring positions per hop. Candidates past the goal are
// rejected (overshooting the imaginary node would strand the walk);
// the plain successor is the fallback.
func (n *Node) nextToward(goal ids.ID) chord.Entry {
	self := n.ring.Self()
	best := n.ring.Successor()
	bestDist := ^uint64(0)
	if best.Valid() {
		bestDist = ids.Distance(best.ID, goal)
	}
	consider := func(e chord.Entry) {
		if !e.Valid() || e.Node == self.Node {
			return
		}
		if !ids.BetweenRightIncl(e.ID, self.ID, goal) {
			return
		}
		if d := ids.Distance(e.ID, goal); d < bestDist {
			best, bestDist = e, d
		}
	}
	for _, e := range n.ring.SuccessorList() {
		consider(e)
	}
	for _, e := range n.dbSet {
		consider(e)
	}
	return best
}

// bestPointer picks the candidate closest behind target on the ring —
// the best local approximation of predecessor(target).
func (n *Node) bestPointer(target ids.ID) chord.Entry {
	best := chord.NoEntry
	var bestDist uint64
	for _, e := range n.dbSet {
		if !e.Valid() {
			continue
		}
		d := ids.Distance(e.ID, target)
		if !best.Valid() || d < bestDist {
			best, bestDist = e, d
		}
	}
	return best
}

// deliver terminates routing at this node.
func (n *Node) deliver(m dbRouteMsg) {
	if m.Payload != nil {
		n.app.OnRouted(m.Key, m.Payload, m.Origin, m.Hops, m.Path)
	}
}

// HandleMessage consumes koorde and substrate one-way messages,
// reporting whether the message belonged to the overlay.
func (n *Node) HandleMessage(from runtime.NodeID, msg any) bool {
	if m, ok := msg.(dbRouteMsg); ok {
		n.routeStep(m)
		return true
	}
	return n.ring.HandleMessage(from, msg)
}

// HandleRequest consumes substrate RPCs (stabilize probes, pings).
func (n *Node) HandleRequest(from runtime.NodeID, req any) (resp any, err error, handled bool) {
	return n.ring.HandleRequest(from, req)
}
