package koorde

import (
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/wiretest"
)

// TestWireRoundTrips covers the de Bruijn routing message (with a
// nested registered payload) and the driver's query/summary messages.
func TestWireRoundTrips(t *testing.T) {
	k := content.Key{Site: 6, Object: 1}
	for _, msg := range []any{
		dbRouteMsg{
			Key: ids.ID(11), I: ids.ID(22), KShift: 1 << 60, BitsLeft: 12,
			Payload: kgQuery{Seq: 2, Key: k, Client: 4},
			Origin:  4, Hops: 3, Deliver: true,
		},
		dbRouteMsg{Key: ids.ID(1)},
		kgQuery{Seq: 2, Key: k, Client: 4},
		kgHomeResp{Seq: 2, Providers: []runtime.NodeID{8}},
		kgSummary{Node: 3, Keys: []content.Key{k}},
	} {
		wiretest.RoundTrip(t, msg)
	}
}
