package koorde

import (
	"fmt"
	"sort"
	"testing"

	"flowercdn/internal/chord"
	"flowercdn/internal/ids"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/simrt"
	"flowercdn/internal/topology"
	"flowercdn/internal/trace"
)

// testPeer is the minimal application peer wrapping a koorde Node.
type testPeer struct {
	node   *Node
	nid    runtime.NodeID
	routed []routedRecord
}

type routedRecord struct {
	key    ids.ID
	origin runtime.NodeID
	hops   int
	pay    any
}

func (p *testPeer) OnRouted(key ids.ID, payload any, origin runtime.NodeID, hops int, _ []trace.Hop) {
	p.routed = append(p.routed, routedRecord{key: key, origin: origin, hops: hops, pay: payload})
}

func (p *testPeer) HandleMessage(from runtime.NodeID, msg any) {
	p.node.HandleMessage(from, msg)
}

func (p *testPeer) HandleRequest(from runtime.NodeID, req any) (any, error) {
	if resp, err, ok := p.node.HandleRequest(from, req); ok {
		return resp, err
	}
	return nil, fmt.Errorf("unhandled request %T", req)
}

type ringFixture struct {
	t     *testing.T
	eng   *simrt.Runtime
	net   runtime.Transport
	rng   *rnd.RNG
	cfg   Config
	peers []*testPeer
}

func newRing(t *testing.T, seed uint64) *ringFixture {
	t.Helper()
	rng := rnd.New(seed)
	topo := topology.MustNew(topology.DefaultConfig(), rng)
	eng := simrt.New(topo)
	return &ringFixture{
		t:   t,
		eng: eng,
		net: eng.Net(),
		rng: rng,
		cfg: DefaultConfig(),
	}
}

// addPeer creates a peer at ring position id; if first, it creates the
// ring, otherwise it joins via an alive member.
func (f *ringFixture) addPeer(id ids.ID) *testPeer {
	f.t.Helper()
	p := &testPeer{}
	p.nid = f.net.Join(p, f.net.Topology().Place(f.rng))
	n, err := NewNode(f.cfg, f.net, f.rng.Split(fmt.Sprint(id)), p, p.nid, id)
	if err != nil {
		f.t.Fatal(err)
	}
	p.node = n
	if len(f.peers) == 0 {
		n.Create()
	} else {
		var gw chord.Entry
		for _, q := range f.peers {
			if f.net.Alive(q.nid) {
				gw = q.node.Self()
				break
			}
		}
		if !gw.Valid() {
			f.t.Fatalf("no alive gateway for join of %s", id)
		}
		joined := false
		attempts := 0
		var try func()
		try = func() {
			attempts++
			n.Join(gw, func(err error) {
				if err == nil {
					joined = true
					return
				}
				if attempts < 3 {
					f.eng.Schedule(10*runtime.Second, try)
				}
			})
		}
		try()
		f.eng.Run(f.eng.Now() + 2*runtime.Minute)
		if !joined {
			f.t.Fatalf("join of %s failed", id)
		}
	}
	f.peers = append(f.peers, p)
	return p
}

func (f *ringFixture) settle(d int64) {
	f.eng.Run(f.eng.Now() + d)
}

func (f *ringFixture) aliveSorted() []*testPeer {
	var out []*testPeer
	for _, p := range f.peers {
		if f.net.Alive(p.nid) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node.Self().ID < out[j].node.Self().ID })
	return out
}

// wantOwner computes the reference successor of key over alive peers.
func (f *ringFixture) wantOwner(key ids.ID) *testPeer {
	alive := f.aliveSorted()
	for _, p := range alive {
		if p.node.Self().ID >= key {
			return p
		}
	}
	return alive[0] // wrap
}

// buildRing spawns n peers at pseudo-random positions and settles long
// enough for stabilization and pointer fixing to converge.
func buildRing(t *testing.T, seed uint64, n int) *ringFixture {
	t.Helper()
	f := newRing(t, seed)
	idRNG := rnd.New(seed ^ 0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		f.addPeer(ids.HashString(fmt.Sprintf("member-%d-%d", seed, i)))
		f.settle(5 * runtime.Second)
	}
	_ = idRNG
	f.settle(5 * runtime.Minute)
	return f
}

// TestImaginaryStartEmbedsKey: the chosen imaginary node must lie on
// (self, succ], and injecting the remaining bits must reproduce the key
// exactly.
func TestImaginaryStartEmbedsKey(t *testing.T) {
	rng := rnd.New(7)
	for trial := 0; trial < 5000; trial++ {
		self := ids.ID(rng.Uint64())
		succ := ids.ID(uint64(self) + 1 + rng.Uint64()%(1<<60))
		key := ids.ID(rng.Uint64())
		b := []int{1, 2, 4, 8}[trial%4]
		i, kshift, bits := imaginaryStart(self, succ, key, b)
		if !ids.BetweenRightIncl(i, self, succ) {
			t.Fatalf("trial %d: start %x outside (%x, %x]", trial, i, self, succ)
		}
		if bits%b != 0 {
			t.Fatalf("trial %d: %d remaining bits not a multiple of b=%d", trial, bits, b)
		}
		// Inject every remaining bit: the cursor must land exactly on key.
		cur := uint64(i)
		for bits > 0 {
			s := b
			if s > bits {
				s = bits
			}
			cur = cur<<s | kshift>>(ids.Bits-s)
			kshift <<= s
			bits -= s
		}
		if ids.ID(cur) != key {
			t.Fatalf("trial %d: injection ended at %x, want %x", trial, cur, key)
		}
	}
}

// TestRouteReachesOwner: every routed key is delivered at the ring
// successor of the key, and in few hops.
func TestRouteReachesOwner(t *testing.T) {
	f := buildRing(t, 3, 32)
	alive := f.aliveSorted()

	keyRNG := rnd.New(99)
	total, walks := 0, 0
	const lookups = 100
	for q := 0; q < lookups; q++ {
		key := ids.ID(keyRNG.Uint64())
		src := alive[keyRNG.Intn(len(alive))]
		want := f.wantOwner(key)
		before := len(want.routed)
		src.node.Route(key, fmt.Sprintf("probe-%d", q))
		f.settle(30 * runtime.Second)
		if len(want.routed) != before+1 {
			t.Fatalf("lookup %d: key %x not delivered at owner %s (records %d)",
				q, key, want.node.Self(), len(want.routed))
		}
		rec := want.routed[len(want.routed)-1]
		if rec.key != key || rec.origin != src.nid {
			t.Fatalf("lookup %d: delivered record %+v", q, rec)
		}
		total += rec.hops
		walks++
	}
	mean := float64(total) / float64(walks)
	t.Logf("mean hops over %d lookups on %d nodes: %.2f", walks, len(alive), mean)
	// log_16(32) ≈ 1.25 de Bruijn hops plus correction walks; anything
	// near the ring-walk regime (~n/2 = 16) means routing is broken.
	if mean > 8 {
		t.Fatalf("mean hop count %.2f way above de Bruijn expectation", mean)
	}
}
