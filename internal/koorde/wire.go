package koorde

import (
	"flowercdn/internal/content"
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
	"flowercdn/internal/trace"
)

// Binary wire marshallers for the de Bruijn route message and the
// koorde-global driver's messages.

func (m dbRouteMsg) AppendWire(w *runtime.WireWriter) {
	w.U64(uint64(m.Key))
	w.U64(uint64(m.I))
	w.U64(m.KShift)
	w.Int(m.BitsLeft)
	w.Any(m.Payload)
	w.Node(m.Origin)
	w.Int(m.Hops)
	w.Bool(m.Deliver)
	w.Bool(m.Traced)
	trace.AppendHopsWire(w, m.Path)
}

func (dbRouteMsg) DecodeWire(r *runtime.WireReader) any {
	var m dbRouteMsg
	m.Key = ids.ID(r.U64())
	m.I = ids.ID(r.U64())
	m.KShift = r.U64()
	m.BitsLeft = r.Int()
	m.Payload = r.Any()
	m.Origin = r.Node()
	m.Hops = r.Int()
	m.Deliver = r.Bool()
	m.Traced = r.Bool()
	m.Path = trace.DecodeHopsWire(r)
	return m
}

func (m kgQuery) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	m.Key.AppendWire(w)
	w.Node(m.Client)
}

func (kgQuery) DecodeWire(r *runtime.WireReader) any {
	var m kgQuery
	m.Seq = r.Uvarint()
	m.Key = content.DecodeKeyWire(r)
	m.Client = r.Node()
	return m
}

func (m kgHomeResp) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(m.Seq)
	w.Nodes(m.Providers)
	trace.AppendHopsWire(w, m.Path)
}

func (kgHomeResp) DecodeWire(r *runtime.WireReader) any {
	var m kgHomeResp
	m.Seq = r.Uvarint()
	m.Providers = r.Nodes()
	m.Path = trace.DecodeHopsWire(r)
	return m
}

func (m kgSummary) AppendWire(w *runtime.WireWriter) {
	w.Node(m.Node)
	content.AppendKeysWire(w, m.Keys)
}

func (kgSummary) DecodeWire(r *runtime.WireReader) any {
	var m kgSummary
	m.Node = r.Node()
	m.Keys = content.DecodeKeysWire(r)
	return m
}
