package koorde

import (
	"errors"
	"fmt"

	"flowercdn/internal/chord"
	"flowercdn/internal/content"
	"flowercdn/internal/ids"
	"flowercdn/internal/metrics"
	"flowercdn/internal/proto"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
	"flowercdn/internal/trace"
	"flowercdn/internal/workload"
)

// koorde-global: the chord-global baseline's deployment shape — one
// global ring, per-website home directories, random redirection, no
// locality — with Koorde's de Bruijn edges carrying every routed
// query and summary. The two baselines differ in exactly one thing,
// the routing geometry, so their hit ratios match and their hop
// counts isolate O(log n / log b) against O(log n).

func init() {
	proto.Register(proto.Info{
		Name:         "koorde-global",
		Summary:      "chord-global's directory scheme routed over Koorde de Bruijn edges",
		Compare:      true,
		Order:        4,
		CheckOptions: CheckDriverOptions,
	}, NewDriver)
	// Socket-backend wire types (interface-typed payloads).
	runtime.RegisterWireType(kgQuery{}, kgHomeResp{}, kgSummary{})
}

// driverConfig tunes the deployment around the overlay.
type driverConfig struct {
	Koorde Config
	// ProvidersPerReply bounds how many providers a home suggests.
	ProvidersPerReply int
	// IndexCap bounds remembered providers per object.
	IndexCap int
	// RefreshInterval is the period of content-summary pushes to the
	// site's current home.
	RefreshInterval int64
	// QueryTimeout bounds one routed query attempt; QueryRetries is
	// the number of attempts before the origin fallback.
	QueryTimeout int64
	QueryRetries int
}

// Option keys the driver reads (defaults in parentheses):
//
//	koorde-degree-bits   int       b: bits corrected per de Bruijn hop, degree 2^b (4)
//	providers-per-reply  int       providers suggested per query (1)
//	index-cap            int       providers remembered per object (4)
//	refresh-interval     int64 ms  summary push period (2 x keepalive-interval, else 2 h)
//	keepalive-interval   int64 ms  shared-vocabulary base for the refresh default
//	query-timeout        int64 ms  one routed query attempt (10 s)
//	chord-demo           bool      compressed maintenance timescales for demos
//	cache-policy         string    per-peer store eviction policy ("none")
//	cache-capacity       int       per-peer store capacity, objects
//
// Directory defaults deliberately match chord-global's, so the only
// variable between the two baselines is the routing geometry. Unknown
// keys are ignored.

// lowerDriverOptions resolves the option map into a validated config —
// shared by the factory and the registry's static CheckOptions hook.
func lowerDriverOptions(opts proto.Options) (driverConfig, proto.CacheConfig, error) {
	kc := DefaultConfig()
	if opts.Bool("chord-demo", false) {
		kc = DemoConfig()
	}
	if b := opts.Int("koorde-degree-bits", kc.DegreeBits); b != kc.DegreeBits {
		kc.DegreeBits = b
		kc.Chord.SuccessorListLen = succListFor(b, chord.DefaultConfig().SuccessorListLen)
	}
	cfg := driverConfig{
		Koorde:            kc,
		ProvidersPerReply: opts.Int("providers-per-reply", 1),
		IndexCap:          opts.Int("index-cap", 4),
		RefreshInterval:   opts.Duration("refresh-interval", 2*opts.Duration("keepalive-interval", runtime.Hour)),
		QueryTimeout:      opts.Duration("query-timeout", 10*runtime.Second),
		QueryRetries:      3,
	}
	cacheCfg, err := proto.CacheConfigFromOptions(opts)
	if err != nil {
		return cfg, cacheCfg, fmt.Errorf("koorde: %w", err)
	}
	if err := kc.Validate(); err != nil {
		return cfg, cacheCfg, err
	}
	if cfg.ProvidersPerReply < 1 || cfg.IndexCap < 1 {
		return cfg, cacheCfg, fmt.Errorf("koorde: provider/index bounds must be positive (%d, %d)",
			cfg.ProvidersPerReply, cfg.IndexCap)
	}
	if cfg.RefreshInterval <= 0 {
		return cfg, cacheCfg, errors.New("koorde: refresh interval must be positive")
	}
	return cfg, cacheCfg, nil
}

// CheckDriverOptions statically validates the driver's options.
func CheckDriverOptions(opts proto.Options) error {
	_, _, err := lowerDriverOptions(opts)
	return err
}

// NewDriver builds a koorde-global deployment.
func NewDriver(env proto.Env, opts proto.Options) (proto.System, error) {
	if env.Net == nil || env.RNG == nil || env.Workload == nil || env.Origins == nil || env.Metrics == nil {
		return nil, errors.New("koorde: missing dependency for koorde-global")
	}
	cfg, cacheCfg, err := lowerDriverOptions(opts)
	if err != nil {
		return nil, err
	}
	d := &kgDriver{cfg: cfg, env: env, idRNG: env.RNG.Split("identities"),
		newStore: cacheCfg.StoreFactory(env)}
	d.registry.BindBus(env.Net)
	return d, nil
}

type kgDriver struct {
	cfg      driverConfig
	env      proto.Env
	idRNG    *rnd.RNG
	newStore func() *content.Store

	// registry is the ring-member gateway set, mirrored across
	// processes on multi-process backends (chord.Registry).
	registry chord.Registry
	// peers tracks every peer ever spawned in creation order — the
	// RingInspector snapshot source (dead peers are skipped).
	peers    []*kgPeer
	spawned  uint64
	alive    int
	querySeq uint64
}

func (d *kgDriver) Start() {}
func (d *kgDriver) Stop()  {}

func (d *kgDriver) SeedCount() int { return proto.DefaultSeedCount(d.env) }

func (d *kgDriver) SpawnSeed(int) (proto.Individual, func()) {
	ind := d.NewIndividual()
	return ind, d.Spawn(ind)
}

func (d *kgDriver) NewIndividual() proto.Individual {
	return kgIdentity{
		Site:      d.env.Workload.AssignInterest(d.idRNG),
		Placement: d.env.Topo.Place(d.idRNG),
		Store:     d.newStore(),
	}
}

func (d *kgDriver) Spawn(ind proto.Individual) func() {
	id := ind.(kgIdentity)
	d.spawned++
	d.alive++
	p := &kgPeer{
		d:     d,
		site:  id.Site,
		store: id.Store,
		rng:   d.env.RNG.Split(fmt.Sprintf("kg-peer-%d", d.spawned)),
		index: make(map[content.Key][]runtime.NodeID),
	}
	p.nid = d.env.Net.Join(p, id.Placement)
	ringID := ids.HashString(fmt.Sprintf("kg-peer-%d", p.nid))
	node, err := NewNode(d.cfg.Koorde, d.env.Net, p.rng.Split("koorde"), p, p.nid, ringID)
	if err != nil {
		panic(err) // config validated at build time
	}
	p.node = node
	d.peers = append(d.peers, p)
	p.enterRing(3)
	return p.kill
}

func (d *kgDriver) Stats() proto.Stats {
	return proto.Stats{
		proto.StatPeersSpawned: float64(d.spawned),
		proto.StatAlivePeers:   float64(d.alive),
	}
}

// RingMembers implements proto.RingInspector: one snapshot record per
// alive, joined ring member, in creation order.
func (d *kgDriver) RingMembers() []proto.RingMember {
	var out []proto.RingMember
	for _, p := range d.peers {
		if p.dead || !p.joined {
			continue
		}
		self := p.node.Self()
		m := proto.RingMember{
			Node: self.Node,
			ID:   self.ID,
			Pred: ringNode(p.node.Predecessor()),
		}
		for _, s := range p.node.SuccessorList() {
			m.Succs = append(m.Succs, ringNode(s))
		}
		m.DeBruijn = []proto.RingNode{}
		for _, e := range p.node.Pointers() {
			m.DeBruijn = append(m.DeBruijn, ringNode(e))
		}
		out = append(out, m)
	}
	return out
}

func ringNode(e chord.Entry) proto.RingNode {
	if !e.Valid() {
		return proto.RingNode{Node: runtime.None}
	}
	return proto.RingNodeOf(e.Node, e.ID)
}

func (d *kgDriver) nextSeq() uint64 {
	d.querySeq++
	return d.querySeq
}

// gateway returns an alive registry entry, pruning dead ones lazily.
func (d *kgDriver) gateway() chord.Entry {
	return d.registry.PickAlive(d.idRNG, d.env.Net.Alive, runtime.None)
}

// siteKey hashes a website onto the ring; its successor is the site's
// directory home. Same derivation domain as chord-global so workloads
// spread comparably.
func siteKey(site content.SiteID) ids.ID {
	return ids.HashString(fmt.Sprintf("kg-site-%d", site))
}

// ---- wire messages ----

// kgQuery routes over the de Bruijn edges to the queried site's home.
type kgQuery struct {
	Seq    uint64
	Key    content.Key
	Client runtime.NodeID
}

// kgHomeResp is the home's redirect, sent directly to the client.
type kgHomeResp struct {
	Seq       uint64
	Providers []runtime.NodeID
	// Path carries the query's overlay route plus the home hop back to
	// the client on traced runs (nil otherwise).
	Path []trace.Hop
}

// kgSummary re-registers a peer's cached keys with the site's current
// home after home churn.
type kgSummary struct {
	Node runtime.NodeID
	Keys []content.Key
}

// WireBytes sizes the summary by its key list.
func (s kgSummary) WireBytes() int { return 32 + 8*len(s.Keys) }

// kgIdentity is the persistent part of a participant: interest,
// location and cached content survive offline periods; the network
// address and ring position are per session.
type kgIdentity struct {
	Site      content.SiteID
	Placement topology.Placement
	Store     *content.Store
}

// kgPeer is one koorde-global participant.
type kgPeer struct {
	d     *kgDriver
	nid   runtime.NodeID
	rng   *rnd.RNG
	site  content.SiteID
	store *content.Store
	node  *Node

	// index is this node's slice of the directory: for every site this
	// node is currently home of, object → providers, capped at
	// IndexCap. It dies with the node.
	index map[content.Key][]runtime.NodeID

	query      *kgActiveQuery
	queryTimer runtime.Timer
	refresh    runtime.Ticker
	joined     bool
	dead       bool
}

type kgActiveQuery struct {
	seq        uint64
	key        content.Key
	start      int64
	attempt    int
	timeout    runtime.Timer
	candidates []runtime.NodeID
	// redirected marks the first home response consumed; retries share
	// the query's seq, so a late duplicate must not restart the probe
	// chain mid-probe.
	redirected bool
	// path is the hop-by-hop trace on traced runs (nil otherwise).
	path []trace.Hop
}

func (p *kgPeer) enterRing(attempts int) {
	if p.dead {
		return
	}
	gw := p.d.gateway()
	if !gw.Valid() {
		if p.d.env.Follower {
			// Never found a second ring on a follower process; wait for
			// an announced gateway instead.
			p.d.env.Clock.Schedule(200*runtime.Millisecond, func() { p.enterRing(attempts) })
			return
		}
		p.node.Create()
		p.onJoined()
		return
	}
	p.node.Join(gw, func(err error) {
		if p.dead {
			return
		}
		if err != nil {
			if attempts > 1 {
				p.d.env.Clock.Schedule(10*runtime.Second, func() { p.enterRing(attempts - 1) })
			}
			return
		}
		p.onJoined()
	})
}

func (p *kgPeer) onJoined() {
	p.joined = true
	p.d.registry.Add(p.node.Self())
	if p.d.env.Workload.Active(p.site) {
		p.scheduleNextQuery(p.d.env.Workload.FirstQueryDelay(p.rng))
	}
	// Content summaries refresh the site's directory at the current
	// home — jittered so the population doesn't push in lockstep.
	p.refresh = p.d.env.Clock.Every(
		p.rng.UniformDuration(0, p.d.cfg.RefreshInterval), p.d.cfg.RefreshInterval, p.pushSummary)
	// A re-joining individual may carry a full cache from earlier
	// sessions; announce it without waiting a whole refresh period.
	if p.store.Len() > 0 {
		p.pushSummary()
	}
}

func (p *kgPeer) pushSummary() {
	if p.dead || !p.joined || p.store.Len() == 0 {
		return
	}
	p.node.Route(siteKey(p.site), kgSummary{Node: p.nid, Keys: p.store.Keys()})
	p.d.env.Metrics.Emit(metrics.CounterEvent(p.d.env.Clock.Now(), "summary_pushes", 1))
}

func (p *kgPeer) scheduleNextQuery(delay int64) {
	p.queryTimer = p.d.env.Clock.Schedule(delay, func() {
		if p.dead {
			return
		}
		p.issueQuery()
		p.scheduleNextQuery(p.d.env.Workload.NextQueryDelay(p.rng))
	})
}

func (p *kgPeer) kill() {
	if p.dead {
		return
	}
	p.dead = true
	p.d.alive--
	p.node.Stop()
	if p.queryTimer != nil {
		p.queryTimer.Cancel()
	}
	if p.refresh != nil {
		p.refresh.Cancel()
	}
	p.query = nil
	p.d.env.Net.Fail(p.nid)
}

func (p *kgPeer) issueQuery() {
	if p.dead || p.query != nil || !p.joined {
		return
	}
	key, ok := p.d.env.Workload.PickObject(p.rng, p.site, p.store)
	if !ok {
		return
	}
	q := &kgActiveQuery{seq: p.d.nextSeq(), key: key, start: p.d.env.Clock.Now()}
	if p.d.env.Trace.Enabled() {
		q.path = trace.Append(q.path, trace.Hop{
			Kind: trace.HopIssue, Node: p.nid, Loc: p.d.env.Net.Locality(p.nid), At: q.start})
	}
	p.query = q
	p.sendQuery(q)
}

func (p *kgPeer) sendQuery(q *kgActiveQuery) {
	if p.dead || p.query != q {
		return
	}
	q.attempt++
	msg := kgQuery{Seq: q.seq, Key: q.key, Client: p.nid}
	if p.d.env.Trace.Enabled() {
		// The routed path segment starts empty; the home ships it back
		// (with its own hop appended) in kgHomeResp.Path.
		p.node.RouteTraced(siteKey(q.key.Site), msg, nil)
	} else {
		p.node.Route(siteKey(q.key.Site), msg)
	}
	q.timeout = p.d.env.Clock.Schedule(p.d.cfg.QueryTimeout, func() {
		if p.dead || p.query != q {
			return
		}
		if q.attempt < p.d.cfg.QueryRetries {
			p.sendQuery(q)
			return
		}
		p.resolve(q, metrics.Miss, p.d.env.Origins.Node(q.key.Site))
	})
}

// OnRouted implements koorde.App: this node currently terminates
// routing for some site key (it is that site's home) or receives a
// summary for it.
func (p *kgPeer) OnRouted(_ ids.ID, payload any, _ runtime.NodeID, hops int, path []trace.Hop) {
	if p.dead {
		return
	}
	switch m := payload.(type) {
	case kgQuery:
		now := p.d.env.Clock.Now()
		p.d.env.Metrics.Emit(metrics.CounterEvent(now, "lookup_hops", float64(hops)))
		p.d.env.Metrics.Emit(metrics.CounterEvent(now, "routed_queries", 1))
		p.d.env.Trace.Delivered(hops)
		providers := p.index[m.Key]
		resp := kgHomeResp{Seq: m.Seq}
		if p.d.env.Trace.Enabled() {
			resp.Path = trace.Append(path, trace.Hop{
				Kind: trace.HopHome, Node: p.nid, Loc: p.d.env.Net.Locality(p.nid), At: now})
		}
		// Random redirection — no locality information exists.
		for _, i := range p.rng.Perm(len(providers)) {
			if len(resp.Providers) >= p.d.cfg.ProvidersPerReply {
				break
			}
			if providers[i] != m.Client {
				resp.Providers = append(resp.Providers, providers[i])
			}
		}
		// The requester is about to hold the object (from a provider
		// or the origin): index it optimistically.
		p.addProvider(m.Key, m.Client)
		p.d.env.Net.Send(p.nid, m.Client, resp)
	case kgSummary:
		for _, k := range m.Keys {
			p.addProvider(k, m.Node)
		}
	}
}

func (p *kgPeer) addProvider(k content.Key, nid runtime.NodeID) {
	ps := p.index[k]
	for _, existing := range ps {
		if existing == nid {
			return
		}
	}
	ps = append(ps, nid)
	if len(ps) > p.d.cfg.IndexCap {
		ps = ps[len(ps)-p.d.cfg.IndexCap:]
	}
	p.index[k] = ps
}

func (p *kgPeer) onHomeResp(m kgHomeResp) {
	q := p.query
	if q == nil || q.seq != m.Seq || q.redirected {
		return
	}
	q.redirected = true
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	q.candidates = m.Providers
	q.path = trace.Concat(q.path, m.Path)
	p.probeProvider(q)
}

func (p *kgPeer) probeProvider(q *kgActiveQuery) {
	if p.dead || p.query != q {
		return
	}
	if len(q.candidates) == 0 {
		p.resolve(q, metrics.Miss, p.d.env.Origins.Node(q.key.Site))
		return
	}
	target := q.candidates[0]
	q.candidates = q.candidates[1:]
	timeout := 2*p.d.env.Net.Latency(p.nid, target) + 300*runtime.Millisecond
	p.d.env.Net.Request(p.nid, target, workload.FetchReq{Key: q.key}, timeout,
		func(resp any, err error) {
			if p.dead || p.query != q {
				return
			}
			served := err == nil && resp.(workload.FetchResp).Served
			if p.d.env.Trace.Enabled() {
				q.path = trace.Append(q.path, trace.Hop{
					Kind: trace.HopProbe, Node: target,
					Loc: p.d.env.Net.Locality(target), At: p.d.env.Clock.Now(),
					// A probe that answered but could not serve is a stale
					// directory entry — the summary false-positive flag.
					FalsePositive: err == nil && !served,
				})
			}
			if !served {
				p.probeProvider(q)
				return
			}
			p.resolve(q, metrics.HitDirectory, target)
		})
}

// resolve records metrics and performs the transfer — the same
// lookup-latency definition as the other deployments.
func (p *kgPeer) resolve(q *kgActiveQuery, outcome metrics.Outcome, provider runtime.NodeID) {
	if p.query != q {
		return
	}
	if q.timeout != nil {
		q.timeout.Cancel()
	}
	p.query = nil
	env := p.d.env
	now := env.Clock.Now()
	dist := env.Net.Latency(p.nid, provider)
	lookup := now - q.start
	if outcome == metrics.Miss {
		lookup += dist
	} else if lookup > dist {
		lookup -= dist
	}
	env.Metrics.Emit(metrics.QueryEvent(now, outcome, lookup, dist))
	if tr := env.Trace; tr.Enabled() {
		tr.Emit(now, &trace.Record{
			Query: q.seq, Client: p.nid, Loc: env.Net.Locality(p.nid),
			Key: q.key.Uint64(), Outcome: outcome, Attempts: q.attempt,
			Hops: trace.Append(q.path, trace.Hop{
				Kind: trace.HopServe, Node: provider, Loc: env.Net.Locality(provider), At: now}),
		})
	}
	if outcome == metrics.Miss {
		env.Net.Request(p.nid, provider, workload.FetchReq{Key: q.key}, 0,
			func(_ any, err error) {
				if p.dead || err != nil {
					return
				}
				p.store.Add(q.key)
			})
		return
	}
	p.store.Add(q.key)
}

// ---- runtime.Handler ----

func (p *kgPeer) HandleMessage(from runtime.NodeID, msg any) {
	if p.dead {
		return
	}
	if p.node.HandleMessage(from, msg) {
		return
	}
	if m, ok := msg.(kgHomeResp); ok {
		p.onHomeResp(m)
	}
}

func (p *kgPeer) HandleRequest(from runtime.NodeID, req any) (any, error) {
	if p.dead {
		return nil, errors.New("koorde: dead peer")
	}
	if resp, err, ok := p.node.HandleRequest(from, req); ok {
		return resp, err
	}
	if r, ok := req.(workload.FetchReq); ok {
		return workload.FetchResp{Key: r.Key, Served: p.store.Has(r.Key)}, nil
	}
	return nil, fmt.Errorf("koorde: unhandled request %T", req)
}
