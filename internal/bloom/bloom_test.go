package bloom

import (
	"testing"
	"testing/quick"

	"flowercdn/internal/sim"
)

func TestNoFalseNegatives(t *testing.T) {
	// The defining property: every added key is reported present.
	f := func(keys []uint64) bool {
		fl := NewForCapacity(len(keys)+1, 0.01)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 5000
	const target = 0.01
	fl := NewForCapacity(n, target)
	rng := sim.NewRNG(1)
	present := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		present[k] = true
		fl.Add(k)
	}
	fp, trials := 0, 100000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if present[k] {
			continue
		}
		if fl.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > target*3 {
		t.Fatalf("false positive rate %.4f, want near %.2f", rate, target)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	fl := New(1024, 4)
	rng := sim.NewRNG(2)
	for i := 0; i < 1000; i++ {
		if fl.Contains(rng.Uint64()) {
			t.Fatal("empty filter reported a key present")
		}
	}
}

func TestGeometryNormalization(t *testing.T) {
	fl := New(0, 0)
	if fl.Bits() < 64 || fl.Hashes() < 1 {
		t.Fatalf("degenerate geometry not normalized: %d bits %d hashes", fl.Bits(), fl.Hashes())
	}
	fl2 := New(65, 3)
	if fl2.Bits() != 128 {
		t.Fatalf("bits not rounded to word multiple: %d", fl2.Bits())
	}
	fl3 := NewForCapacity(-5, 2.0)
	if fl3.Bits() == 0 || fl3.Hashes() < 1 {
		t.Fatal("NewForCapacity with junk args produced unusable filter")
	}
}

func TestUnionContainsBoth(t *testing.T) {
	a := New(2048, 4)
	b := New(2048, 4)
	a.Add(1)
	a.Add(2)
	b.Add(3)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{1, 2, 3} {
		if !a.Contains(k) {
			t.Fatalf("union missing key %d", k)
		}
	}
}

func TestUnionGeometryMismatch(t *testing.T) {
	a := New(2048, 4)
	if err := a.Union(New(1024, 4)); err == nil {
		t.Fatal("union with different bit count accepted")
	}
	if err := a.Union(New(2048, 3)); err == nil {
		t.Fatal("union with different hash count accepted")
	}
	if err := a.Union(nil); err == nil {
		t.Fatal("union with nil accepted")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := New(1024, 3)
	a.Add(7)
	c := a.Clone()
	c.Add(9)
	if !c.Contains(7) || !c.Contains(9) {
		t.Fatal("clone lost keys")
	}
	if a.Contains(9) && a.FillRatio() == c.FillRatio() {
		t.Fatal("mutating clone affected original")
	}
	if a.ApproxCount() != 1 || c.ApproxCount() != 2 {
		t.Fatalf("counts: a=%d c=%d", a.ApproxCount(), c.ApproxCount())
	}
}

func TestResetClears(t *testing.T) {
	a := New(1024, 3)
	for i := uint64(0); i < 50; i++ {
		a.Add(i)
	}
	a.Reset()
	if a.ApproxCount() != 0 || a.FillRatio() != 0 {
		t.Fatal("reset did not clear filter")
	}
	if a.Contains(5) {
		t.Fatal("reset filter still contains key")
	}
}

func TestFillRatioGrows(t *testing.T) {
	a := New(4096, 4)
	prev := a.FillRatio()
	if prev != 0 {
		t.Fatal("fresh filter fill ratio not 0")
	}
	for i := uint64(0); i < 200; i++ {
		a.Add(i)
	}
	if a.FillRatio() <= prev {
		t.Fatal("fill ratio did not grow")
	}
	if a.FillRatio() > 0.5 {
		t.Fatalf("fill ratio %.2f unexpectedly high for 200 keys in 4096 bits", a.FillRatio())
	}
}

func TestSizeBytes(t *testing.T) {
	a := New(4096, 4)
	if a.SizeBytes() != 512 {
		t.Fatalf("SizeBytes = %d, want 512", a.SizeBytes())
	}
}

func TestGobRoundTrip(t *testing.T) {
	f := NewForCapacity(100, 0.02)
	for k := uint64(0); k < 100; k += 3 {
		f.Add(k)
	}
	b, err := f.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.GobDecode(b); err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Hashes() != f.Hashes() || g.ApproxCount() != f.ApproxCount() {
		t.Fatalf("geometry changed across gob: %d/%d/%d vs %d/%d/%d",
			g.Bits(), g.Hashes(), g.ApproxCount(), f.Bits(), f.Hashes(), f.ApproxCount())
	}
	for k := uint64(0); k < 100; k++ {
		if f.Contains(k) != g.Contains(k) {
			t.Fatalf("membership diverged at key %d", k)
		}
	}
}
