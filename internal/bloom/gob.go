package bloom

import (
	"bytes"
	"encoding/gob"
)

// Gob support: filters ride inside gossip summaries, which cross
// process boundaries on the socket backend. The fields are unexported
// (the bit array is an implementation detail), so the filter
// serializes itself through an explicit wire struct — geometry plus
// bits — rather than leaking field names into the format.

// wireFilter is the encoded form.
type wireFilter struct {
	Bits   []uint64
	NBits  uint64
	Hashes int
	Count  int
}

// GobEncode implements gob.GobEncoder.
func (f *Filter) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(wireFilter{
		Bits:   f.bits,
		NBits:  f.nbits,
		Hashes: f.hashes,
		Count:  f.count,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (f *Filter) GobDecode(b []byte) error {
	var w wireFilter
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	f.bits = w.Bits
	f.nbits = w.NBits
	f.hashes = w.Hashes
	f.count = w.Count
	return nil
}
