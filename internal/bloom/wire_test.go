package bloom_test

import (
	"testing"

	"flowercdn/internal/bloom"
	// The filter's wire-type registration lives with the protocol that
	// ships it (flower's driver init); pull it in so the binary codec
	// has a tag for *bloom.Filter in this test binary too.
	_ "flowercdn/internal/flower"
	"flowercdn/internal/wiretest"
)

// TestWireRoundTrips checks a real (populated) filter survives every
// codec — membership answers included, since DeepEqual covers the bit
// array and geometry.
func TestWireRoundTrips(t *testing.T) {
	f := bloom.NewForCapacity(100, 0.01)
	for k := uint64(0); k < 40; k++ {
		f.Add(k * 0x9e3779b97f4a7c15)
	}
	wiretest.RoundTrip(t, f)
	wiretest.RoundTrip(t, bloom.New(64, 2))
}
