package bloom

import "flowercdn/internal/runtime"

// Binary wire marshaller for the filter, mirroring the gob wire struct
// (gob.go): geometry plus the bit array, without leaking the
// unexported field names into the format.

// AppendWire implements runtime.WireMessage.
func (f *Filter) AppendWire(w *runtime.WireWriter) {
	w.Uvarint(uint64(len(f.bits)))
	for _, word := range f.bits {
		w.U64(word)
	}
	w.U64(f.nbits)
	w.Int(f.hashes)
	w.Int(f.count)
}

// DecodeWire implements runtime.WireMessage; the receiver is the
// registered prototype and is never read.
func (*Filter) DecodeWire(r *runtime.WireReader) any {
	f := &Filter{}
	n := r.ArrayLen(8)
	if r.Err() == nil && n > 0 {
		f.bits = make([]uint64, n)
		for i := range f.bits {
			f.bits[i] = r.U64()
		}
	}
	f.nbits = r.U64()
	f.hashes = r.Int()
	f.count = r.Int()
	return f
}
