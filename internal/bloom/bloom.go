// Package bloom implements the Bloom filters content peers exchange as
// "summaries of their stored content" during petal gossip (paper
// Sec. 3.1). A summary must be cheap to ship in a gossip message and
// may safely report false positives — a peer that follows a stale or
// false-positive summary simply falls back to its directory peer — but
// must never report false negatives for the objects it was built from.
package bloom

import (
	"fmt"
	"math"
)

// Filter is a classic Bloom filter over 64-bit keys. The zero value is
// unusable; construct with New or NewForCapacity.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	count  int
}

// New creates a filter with the given number of bits (rounded up to a
// multiple of 64) and hash functions.
func New(nbits uint64, hashes int) *Filter {
	if nbits == 0 {
		nbits = 64
	}
	if hashes < 1 {
		hashes = 1
	}
	words := (nbits + 63) / 64
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  words * 64,
		hashes: hashes,
	}
}

// NewForCapacity sizes a filter for n expected keys at the target
// false-positive rate p, using the standard optimal formulas
// m = -n·ln(p)/ln(2)² and k = (m/n)·ln(2).
func NewForCapacity(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2))
	k := int(math.Round(m / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(uint64(m), k)
}

// mix is a strong 64-bit mixer (splitmix64 finalizer) used to derive
// the double-hashing pair from one key.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// indexes derives the i-th probe position via Kirsch–Mitzenmacher
// double hashing: g_i(x) = h1(x) + i·h2(x).
func (f *Filter) index(key uint64, i int) uint64 {
	h1 := mix(key)
	h2 := mix(key ^ 0x9e3779b97f4a7c15)
	h2 |= 1 // force odd so probes cycle through the whole table
	return (h1 + uint64(i)*h2) % f.nbits
}

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	for i := 0; i < f.hashes; i++ {
		pos := f.index(key, i)
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.count++
}

// Contains reports whether key may have been added. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	for i := 0; i < f.hashes; i++ {
		pos := f.index(key, i)
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// ApproxCount returns the number of Add calls (an upper bound on
// distinct keys).
func (f *Filter) ApproxCount() int { return f.count }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.nbits }

// Hashes returns the number of hash probes per key.
func (f *Filter) Hashes() int { return f.hashes }

// SizeBytes returns the wire size of the filter's bit array; gossip
// messages report this for traffic accounting.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits:   make([]uint64, len(f.bits)),
		nbits:  f.nbits,
		hashes: f.hashes,
		count:  f.count,
	}
	copy(c.bits, f.bits)
	return c
}

// Union merges other into f. Both filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if other == nil {
		return fmt.Errorf("bloom: union with nil filter")
	}
	if f.nbits != other.nbits || f.hashes != other.hashes {
		return fmt.Errorf("bloom: geometry mismatch: %d/%d bits, %d/%d hashes",
			f.nbits, other.nbits, f.hashes, other.hashes)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.count += other.count
	return nil
}

// Reset clears the filter in place.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

// FillRatio returns the fraction of set bits — a diagnostic for
// saturation (a saturated filter answers true for everything).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.nbits)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
