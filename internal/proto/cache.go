package proto

import (
	"fmt"

	"flowercdn/internal/cache"
	"flowercdn/internal/content"
	"flowercdn/internal/metrics"
	"flowercdn/internal/workload"
)

// Every capacity-aware driver reads the same two option keys, so one
// option set bounds a whole comparison grid the way the protocol knobs
// already do. Lowering and validation live here — next to the Options
// type — rather than being copy-pasted into each driver.
const (
	// OptCachePolicy names the eviction policy of every peer's content
	// store; any name registered with internal/cache ("none", "lru",
	// "lfu", "size-aware"). Default "none": the paper's unbounded
	// model, bit-identical to a store built before this seam existed.
	OptCachePolicy = "cache-policy"
	// OptCacheCapacity is the per-peer store capacity in objects.
	// Byte-cost policies convert it to a byte budget at the workload's
	// mean object size, so the knob stays comparable across policies.
	// Required >= 1 for every policy except "none".
	OptCacheCapacity = "cache-capacity"
)

// CacheConfig is the resolved cache configuration of one run.
type CacheConfig struct {
	Policy   string
	Capacity int
}

// CacheConfigFromOptions reads and validates the shared cache options.
// Drivers call it from both their factory and their CheckOptions hook,
// so a bad policy name or capacity fails a sweep before any simulation
// runs.
func CacheConfigFromOptions(opts Options) (CacheConfig, error) {
	c := CacheConfig{
		Policy:   opts.String(OptCachePolicy, cache.PolicyNone),
		Capacity: opts.Int(OptCacheCapacity, 0),
	}
	if c.Policy == "" {
		c.Policy = cache.PolicyNone
	}
	return c, c.Validate()
}

// Validate checks the configuration against the policy registry. Both
// half-set combinations are rejected — a bounded policy without a
// capacity, and a capacity without a bounding policy — so a forgotten
// knob fails the run up front instead of silently running unbounded.
func (c CacheConfig) Validate() error {
	if !cache.Registered(c.Policy) {
		return fmt.Errorf("proto: unknown cache policy %q (registered: %v)", c.Policy, cache.Names())
	}
	if c.Bounded() && c.Capacity < 1 {
		return fmt.Errorf("proto: cache policy %q needs %s >= 1, got %d", c.Policy, OptCacheCapacity, c.Capacity)
	}
	if !c.Bounded() && c.Capacity > 0 {
		return fmt.Errorf("proto: %s %d set without a bounding %s (policy is %q; pick one of %v)",
			OptCacheCapacity, c.Capacity, OptCachePolicy, c.Policy, cache.Names())
	}
	return nil
}

// Bounded reports whether the configuration actually evicts.
func (c CacheConfig) Bounded() bool { return c.Policy != cache.PolicyNone }

// StoreFactory returns the per-peer store constructor for this run:
// plain content.NewStore for "none" (the unbounded paper model, with
// zero per-store overhead), otherwise a policy-bounded store that
// streams one CounterEvictions event per evicted object through the
// run's metrics pipeline. Call once per run after validation; every
// store gets its own policy instance.
func (c CacheConfig) StoreFactory(env Env) func() *content.Store {
	if !c.Bounded() {
		return content.NewStore
	}
	info, _ := cache.Lookup(c.Policy)
	capacity := int64(c.Capacity)
	var costFn func(content.Key) int64
	if info.ByteCost {
		capacity *= workload.MeanObjectBytes
		costFn = workload.ObjectBytes
	}
	onEvict := func(content.Key) {
		env.Metrics.Emit(metrics.CounterEvent(env.Clock.Now(), metrics.CounterEvictions, 1))
	}
	policy := c.Policy
	return func() *content.Store {
		pol, err := cache.New(policy, capacity)
		if err != nil {
			panic(err) // unreachable: the name validated above
		}
		return content.NewStoreWith(content.StoreOptions{Policy: pol, Cost: costFn, OnEvict: onEvict})
	}
}
