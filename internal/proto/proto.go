// Package proto defines the pluggable protocol runtime: the seam
// between the experiment harness (population churn, seeding, metric
// aggregation — internal/harness) and a protocol deployment (Flower-CDN,
// PetalUp-CDN, Squirrel, the baselines — or any future overlay).
//
// A protocol package implements System, wraps its construction in a
// Factory, and Registers itself under a name in an init function; the
// harness resolves deployments solely through this registry and drives
// them through the System interface. Nothing above the protocol layer
// mentions a concrete protocol type: configuration flows down as an
// opaque Options map, measurements flow up as a typed event stream
// (internal/metrics.Emitter) plus a generic Stats map.
package proto

import (
	"flowercdn/internal/metrics"
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"flowercdn/internal/topology"
	"flowercdn/internal/trace"
	"flowercdn/internal/workload"
)

// Env is the substrate one deployment runs on. The harness builds one
// per run; every handle is exclusive to that run.
type Env struct {
	// Clock is the run's time source: the discrete-event engine on the
	// sim backend, the wall clock on the realtime backend.
	Clock runtime.Clock
	// Net is the simulated message layer.
	Net runtime.Transport
	// Topo is the latency/locality model behind Net.
	Topo *topology.Topology
	// RNG is the deployment's deterministic randomness root, split from
	// the run's master seed under the protocol's name.
	RNG *rnd.RNG
	// Workload owns the catalog, popularity and interest assignment.
	Workload *workload.Workload
	// Origins are the per-site origin servers (the miss fallback).
	Origins *workload.Origins
	// Metrics receives the deployment's typed observation stream.
	Metrics metrics.Emitter
	// Trace is the per-query lookup tracer; nil (the common case) means
	// tracing is disabled and every tracer method is a free no-op.
	// Drivers gate per-hop work on Trace.Enabled().
	Trace *trace.Tracer
	// LocalitySkew biases arriving clients over localities: 0 is the
	// paper's uniform spread, larger values Zipf-concentrate arrivals
	// into low-index localities. Locality-blind protocols ignore it.
	LocalitySkew float64
	// Follower marks a process that must not found the overlay. On
	// multi-process backends exactly one process bootstraps (creates
	// the first ring); the others wait for a gateway announced over the
	// transport's Bus (runtime.BusOf) instead of founding a disjoint
	// overlay of their own. Single-process runs leave it false.
	Follower bool
}

// Individual is the persistent half of a participant: interest,
// physical placement, and cached content survive offline periods while
// every online session gets a fresh network identity. The concrete
// type is the protocol's own; the harness only shuttles individuals
// between its churn pool and Spawn.
type Individual any

// Stats is the generic counter/gauge map a deployment reports at the
// end of a run. Well-known keys the harness and formatters understand:
//
//	alive_peers    gauge: participants alive at measurement time
//	peers_spawned  counter: sessions ever started
//
// Everything else is protocol vocabulary (alive_directories,
// dir_promotions, registrations, ...) surfaced verbatim in results.
type Stats map[string]float64

// StatAlivePeers and StatPeersSpawned are the well-known Stats keys.
const (
	StatAlivePeers   = "alive_peers"
	StatPeersSpawned = "peers_spawned"
)

// System is one protocol deployment driven by the harness. All calls
// happen on the engine goroutine.
//
// Run shape: Start fires once at time zero; the harness then spawns
// SeedCount bootstrap participants (staggered), starts the churn
// process which mints and revives Individuals through
// NewIndividual/Spawn, runs the engine to the horizon, and finally
// calls Stop and Stats.
type System interface {
	// Start runs once before any participant exists — the hook for
	// deployment-wide periodic work.
	Start()
	// Stop runs after the simulation horizon.
	Stop()
	// SeedCount is the number of bootstrap participants spawned before
	// churn begins (the paper seeds one directory peer per (website,
	// locality); member-ring protocols seed the same count of ordinary
	// members so population ramps stay comparable).
	SeedCount() int
	// SpawnSeed mints and brings online the i-th bootstrap participant
	// (0 <= i < SeedCount). The returned Individual joins the churn
	// pool when its session ends; the kill func ends the session.
	SpawnSeed(i int) (Individual, func())
	// NewIndividual mints a fresh persistent individual (drawing
	// interest and placement from the deployment's RNG).
	NewIndividual() Individual
	// Spawn brings an individual online for one session and returns
	// the kill func that fails it (fail-only churn).
	Spawn(Individual) func()
	// Stats reports the deployment's counters and gauges.
	Stats() Stats
}

// Info describes a registered protocol.
type Info struct {
	// Name is the registry key ("flower", "squirrel", ...).
	Name string
	// Summary is a one-line description for CLI listings.
	Summary string
	// Compare marks protocols included in default head-to-head grids
	// (degenerate floors like origin-only register with Compare false
	// and stay reachable by name).
	Compare bool
	// Order sorts listings and comparison grids (ties break by name);
	// the paper's protocols come first, baselines after.
	Order int
	// CheckOptions statically validates the driver's options without
	// building a deployment (nil = nothing to check). Harness config
	// validation calls it, so a bad knob fails a sweep before any
	// simulation runs rather than minutes into the worker pool.
	CheckOptions func(Options) error
}

// Factory builds a deployment from the run environment and its opaque
// options. Factories must not consult any global state besides the
// registry: everything a run needs arrives through env and opts.
type Factory func(env Env, opts Options) (System, error)

// DefaultSeedCount is the bootstrap population every built-in
// deployment uses — one participant per (website, locality), the size
// of the paper's initial D-ring — so population ramps stay comparable
// across protocols in one grid.
func DefaultSeedCount(env Env) int {
	return env.Workload.Config().Sites * env.Topo.Localities()
}
