package proto

import (
	"errors"
	"reflect"
	"testing"
)

func stubFactory(Env, Options) (System, error) { return nil, errors.New("stub") }

func TestRegistryResolvesByName(t *testing.T) {
	Register(Info{Name: "test-a", Summary: "a", Compare: true, Order: 10}, stubFactory)
	Register(Info{Name: "test-b", Summary: "b", Order: 11}, stubFactory)

	if !Registered("test-a") || !Registered("test-b") {
		t.Fatal("registered names do not resolve")
	}
	if Registered("test-nope") {
		t.Fatal("unknown name resolves")
	}
	info, ok := Lookup("test-a")
	if !ok || info.Summary != "a" || !info.Compare {
		t.Fatalf("Lookup returned %+v, %v", info, ok)
	}
	if _, err := New("test-nope", Env{}, nil); err == nil {
		t.Fatal("New accepted an unknown protocol")
	}
	// The stub factory's error propagates through New.
	if _, err := New("test-a", Env{}, nil); err == nil || err.Error() != "stub" {
		t.Fatalf("New error = %v", err)
	}
}

func TestRegistryOrdering(t *testing.T) {
	// Self-contained registrations (the registry is process-global, so
	// this test must not lean on entries other tests add).
	Register(Info{Name: "test-z-first", Order: -2, Compare: true}, stubFactory)
	Register(Info{Name: "test-a-second", Order: -1, Compare: true}, stubFactory)
	Register(Info{Name: "test-nocompare", Order: -1}, stubFactory)
	names := CompareNames()
	if len(names) < 2 || names[0] != "test-z-first" || names[1] != "test-a-second" {
		t.Fatalf("ordering not by (Order, Name): %v", names)
	}
	// Compare=false names appear in Names but not CompareNames.
	all := Names()
	found := false
	for _, n := range all {
		if n == "test-nocompare" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() missing non-compare entry: %v", all)
	}
	for _, n := range names {
		if n == "test-nocompare" {
			t.Fatal("CompareNames() includes Compare=false entry")
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []func(){
		func() { Register(Info{Name: ""}, stubFactory) },
		func() { Register(Info{Name: "test-dup"}, nil) },
		func() {
			Register(Info{Name: "test-dup"}, stubFactory)
			Register(Info{Name: "test-dup"}, stubFactory)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestOptionsGetters(t *testing.T) {
	o := Options{
		"int":    3,
		"i64":    int64(7),
		"f":      2.5,
		"b":      true,
		"s":      "x",
		"badint": "nope",
	}
	if o.Int("int", 9) != 3 || o.Int("i64", 9) != 7 || o.Int("f", 9) != 2 {
		t.Fatal("Int coercions wrong")
	}
	if o.Int("missing", 9) != 9 || o.Int("badint", 9) != 9 {
		t.Fatal("Int defaults wrong")
	}
	if o.Duration("i64", 1) != 7 || o.Duration("int", 1) != 3 || o.Duration("missing", 1) != 1 {
		t.Fatal("Duration wrong")
	}
	if o.Float("f", 0) != 2.5 || o.Float("int", 0) != 3 || o.Float("missing", 1.5) != 1.5 {
		t.Fatal("Float wrong")
	}
	if !o.Bool("b", false) || o.Bool("missing", true) != true || o.Bool("s", false) {
		t.Fatal("Bool wrong")
	}
	if o.String("s", "d") != "x" || o.String("missing", "d") != "d" {
		t.Fatal("String wrong")
	}
	want := []string{"b", "badint", "f", "i64", "int", "s"}
	if !reflect.DeepEqual(o.Keys(), want) {
		t.Fatalf("Keys() = %v", o.Keys())
	}
	if Options(nil).Int("x", 5) != 5 {
		t.Fatal("nil Options getter wrong")
	}
}
