package proto

import "sort"

// Options is the generic per-protocol configuration map. The harness
// and façade never interpret it; each driver reads the keys it
// understands and ignores the rest, so one option set can be lowered
// for any protocol (a squirrel run simply ignores "push-threshold").
//
// Values are plain Go scalars; the typed getters coerce between the
// numeric kinds a literal or a flag plausibly produces (int, int64,
// float64) and fall back to the given default on a missing key or an
// incompatible type.
type Options map[string]any

// Int reads an integer option.
func (o Options) Int(key string, def int) int {
	switch v := o[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	default:
		return def
	}
}

// Duration reads a simulated-duration option (int64 milliseconds).
func (o Options) Duration(key string, def int64) int64 {
	switch v := o[key].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case float64:
		return int64(v)
	default:
		return def
	}
}

// Float reads a float option.
func (o Options) Float(key string, def float64) float64 {
	switch v := o[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	default:
		return def
	}
}

// Bool reads a boolean option.
func (o Options) Bool(key string, def bool) bool {
	if v, ok := o[key].(bool); ok {
		return v
	}
	return def
}

// String reads a string option.
func (o Options) String(key, def string) string {
	if v, ok := o[key].(string); ok {
		return v
	}
	return def
}

// Keys returns the option keys, sorted.
func (o Options) Keys() []string {
	out := make([]string, 0, len(o))
	for k := range o {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
