package proto

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps protocol names to their drivers. Registration
// happens in package init functions (a protocol package registers
// itself when imported); lookups happen per run, possibly from many
// sweep workers at once, hence the lock.

type driver struct {
	info    Info
	factory Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]driver{}
)

// Register adds a protocol driver under info.Name. It panics on an
// empty name, a nil factory, or a duplicate registration — all
// programmer errors surfaced at init time.
func Register(info Info, f Factory) {
	if info.Name == "" {
		panic("proto: Register with empty name")
	}
	if f == nil {
		panic("proto: Register with nil factory for " + info.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic("proto: duplicate registration of " + info.Name)
	}
	registry[info.Name] = driver{info: info, factory: f}
}

// New builds a deployment of the named protocol.
func New(name string, env Env, opts Options) (System, error) {
	regMu.RLock()
	d, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("proto: unknown protocol %q (registered: %v)", name, Names())
	}
	return d.factory(env, opts)
}

// Check statically validates opts for the named protocol: unknown
// names error, and a driver's CheckOptions hook (when present) vets
// the knobs it understands.
func Check(name string, opts Options) error {
	regMu.RLock()
	d, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return fmt.Errorf("proto: unknown protocol %q (registered: %v)", name, Names())
	}
	if d.info.CheckOptions != nil {
		return d.info.CheckOptions(opts)
	}
	return nil
}

// Registered reports whether name resolves to a driver.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Lookup returns a registered protocol's descriptor.
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	return d.info, ok
}

func names(filter func(Info) bool) []string {
	regMu.RLock()
	infos := make([]Info, 0, len(registry))
	for _, d := range registry {
		if filter == nil || filter(d.info) {
			infos = append(infos, d.info)
		}
	}
	regMu.RUnlock()
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Order != infos[j].Order {
			return infos[i].Order < infos[j].Order
		}
		return infos[i].Name < infos[j].Name
	})
	out := make([]string, len(infos))
	for i, info := range infos {
		out[i] = info.Name
	}
	return out
}

// Names returns every registered protocol name in (Order, Name) order.
func Names() []string { return names(nil) }

// CompareNames returns the protocols that belong in default
// head-to-head comparison grids, in (Order, Name) order.
func CompareNames() []string {
	return names(func(i Info) bool { return i.Compare })
}
