package proto

import "testing"

func TestCacheConfigFromOptions(t *testing.T) {
	// Defaults: unbounded.
	c, err := CacheConfigFromOptions(Options{})
	if err != nil || c.Policy != "none" || c.Bounded() {
		t.Fatalf("defaults: %+v, %v", c, err)
	}
	// Explicit empty string lowers to none.
	c, err = CacheConfigFromOptions(Options{OptCachePolicy: ""})
	if err != nil || c.Policy != "none" {
		t.Fatalf("empty policy: %+v, %v", c, err)
	}
	// A bounded policy with a capacity.
	c, err = CacheConfigFromOptions(Options{OptCachePolicy: "lru", OptCacheCapacity: 32})
	if err != nil || !c.Bounded() || c.Capacity != 32 {
		t.Fatalf("lru/32: %+v, %v", c, err)
	}
	// Bounded without capacity: rejected.
	if _, err := CacheConfigFromOptions(Options{OptCachePolicy: "lru"}); err == nil {
		t.Fatal("lru without capacity accepted")
	}
	if _, err := CacheConfigFromOptions(Options{OptCachePolicy: "lfu", OptCacheCapacity: 0}); err == nil {
		t.Fatal("lfu with capacity 0 accepted")
	}
	// Unknown policy: rejected.
	if _, err := CacheConfigFromOptions(Options{OptCachePolicy: "arc", OptCacheCapacity: 8}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// A capacity without a bounding policy is a forgotten knob, not an
	// unbounded run.
	if _, err := CacheConfigFromOptions(Options{OptCacheCapacity: 9}); err == nil {
		t.Fatal("capacity without a policy accepted")
	}
	if _, err := CacheConfigFromOptions(Options{OptCachePolicy: "none", OptCacheCapacity: 9}); err == nil {
		t.Fatal("none with a positive capacity accepted")
	}
}
