package proto

import (
	"flowercdn/internal/ids"
	"flowercdn/internal/runtime"
)

// This file defines the optional ring-introspection capability a
// deployment may expose so internal/ringcheck can assert structural
// correctness (Zave's "How to Make Chord Correct" invariants) at
// checkpoints of a deterministic run. Inspection is read-only and
// outside the protocol: it sees the same pointers the nodes route by,
// but never sends a message or advances the clock.

// RingNode names one ring member as seen from another member's routing
// state: its network address and ring position. The zero value (Node
// == 0) is only meaningful when produced against runtime.None — use
// Valid to test.
type RingNode struct {
	Node runtime.NodeID
	ID   ids.ID
}

// Valid reports whether the reference names a node.
func (r RingNode) Valid() bool { return r.Node != runtime.None }

// RingMember is a point-in-time snapshot of one ALIVE overlay member's
// ring state: its own position plus every pointer the checker needs.
type RingMember struct {
	// Node and ID identify the member itself.
	Node runtime.NodeID
	ID   ids.ID
	// Pred is the member's predecessor pointer (possibly invalid).
	Pred RingNode
	// Succs is the member's successor list, closest first.
	Succs []RingNode
	// DeBruijn is the member's de Bruijn pointer candidate set (koorde
	// only; nil for plain Chord overlays).
	DeBruijn []RingNode
}

// RingInspector is the optional capability a deployment implements so
// the invariant harness can snapshot its overlay: one RingMember per
// currently-alive, fully-joined ring member. Implementations must be
// deterministic (stable order for a given state) and side-effect free.
type RingInspector interface {
	RingMembers() []RingMember
}

// RingNodeOf is a convenience for the common chord.Entry shape.
func RingNodeOf(node runtime.NodeID, id ids.ID) RingNode {
	return RingNode{Node: node, ID: id}
}
