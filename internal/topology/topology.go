// Package topology models the underlying physical network the paper's
// simulation generates: peers connected by links of variable latency
// between 10 and 500 ms, partitioned into k physical localities with a
// landmark-based technique (Ratnasamy et al. [10]).
//
// The model places k landmarks in the unit square. Each arriving peer
// is associated with one landmark and placed at the landmark plus
// Gaussian noise, so peers of one locality form a latency cluster. The
// one-way latency between two points is an affine function of their
// Euclidean distance, clamped to [MinLatency, MaxLatency]. Locality of
// a point is the index of its nearest landmark, exactly the landmark
// binning trick of [10].
package topology

import (
	"fmt"
	"math"

	"flowercdn/internal/rnd"
)

// Locality identifies one of the k physical localities.
type Locality int

// Point is a position in the unit square.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Placement is a peer's position and derived locality.
type Placement struct {
	Pos Point
	Loc Locality
}

// Config controls the latency model. The zero value is not usable; use
// DefaultConfig.
type Config struct {
	// Localities is k, the number of landmark clusters (paper: 6).
	Localities int
	// ClusterStdDev is the standard deviation of the Gaussian noise
	// around a landmark, in unit-square units.
	ClusterStdDev float64
	// MinLatency and MaxLatency clamp one-way link latency (paper:
	// 10–500 ms).
	MinLatency, MaxLatency int64
	// LatencyScale converts unit-square distance to milliseconds.
	LatencyScale float64
}

// DefaultConfig reproduces the paper's Table 1 network: latencies in
// [10, 500] ms and k = 6 localities. The scale is chosen so that
// intra-locality latencies mostly fall well under 100 ms while
// cross-locality pairs span roughly 100–500 ms.
func DefaultConfig() Config {
	return Config{
		Localities:    6,
		ClusterStdDev: 0.05,
		MinLatency:    10,
		MaxLatency:    500,
		LatencyScale:  330,
	}
}

// Topology is the immutable latency model for one simulation run. It is
// safe to share between all nodes because it has no mutable state after
// construction; peer placements are drawn from it but stored by the
// network layer.
type Topology struct {
	cfg       Config
	landmarks []Point
}

// New builds a topology with cfg.Localities landmarks laid out on a
// jittered grid covering the unit square.
func New(cfg Config, rng *rnd.RNG) (*Topology, error) {
	if cfg.Localities < 1 {
		return nil, fmt.Errorf("topology: need at least 1 locality, got %d", cfg.Localities)
	}
	if cfg.MinLatency < 0 || cfg.MaxLatency < cfg.MinLatency {
		return nil, fmt.Errorf("topology: invalid latency bounds [%d, %d]", cfg.MinLatency, cfg.MaxLatency)
	}
	if cfg.LatencyScale <= 0 {
		return nil, fmt.Errorf("topology: latency scale must be positive, got %g", cfg.LatencyScale)
	}
	t := &Topology{cfg: cfg}
	t.landmarks = layoutLandmarks(cfg.Localities, rng)
	return t, nil
}

// MustNew is New but panics on error; for use with known-good configs.
func MustNew(cfg Config, rng *rnd.RNG) *Topology {
	t, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return t
}

// layoutLandmarks arranges k landmarks on a near-square grid spanning
// the unit square, with slight jitter so distances are not degenerate.
func layoutLandmarks(k int, rng *rnd.RNG) []Point {
	cols := int(math.Ceil(math.Sqrt(float64(k))))
	rows := (k + cols - 1) / cols
	pts := make([]Point, 0, k)
	for i := 0; i < k; i++ {
		r, c := i/cols, i%cols
		x := (float64(c) + 0.5) / float64(cols)
		y := (float64(r) + 0.5) / float64(rows)
		x += rng.Uniform(-0.03, 0.03)
		y += rng.Uniform(-0.03, 0.03)
		pts = append(pts, Point{clamp01(x), clamp01(y)})
	}
	return pts
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Localities returns k.
func (t *Topology) Localities() int { return t.cfg.Localities }

// Landmark returns the position of landmark l.
func (t *Topology) Landmark(l Locality) Point { return t.landmarks[l] }

// Config returns the configuration the topology was built with.
func (t *Topology) Config() Config { return t.cfg }

// Place draws a placement for a new peer: a uniformly random landmark
// and Gaussian scatter around it. The reported locality is recomputed
// as the nearest landmark, so a peer scattered into a neighbouring
// cluster is (correctly) assigned to that cluster.
func (t *Topology) Place(rng *rnd.RNG) Placement {
	l := Locality(rng.Intn(len(t.landmarks)))
	return t.PlaceAt(l, rng)
}

// PlaceAt draws a placement scattered around a specific landmark. The
// derived locality is still the nearest landmark to the drawn point.
func (t *Topology) PlaceAt(l Locality, rng *rnd.RNG) Placement {
	if int(l) < 0 || int(l) >= len(t.landmarks) {
		panic(fmt.Sprintf("topology: PlaceAt locality %d out of range", l))
	}
	lm := t.landmarks[l]
	p := Point{
		X: clamp01(rng.Norm(lm.X, t.cfg.ClusterStdDev)),
		Y: clamp01(rng.Norm(lm.Y, t.cfg.ClusterStdDev)),
	}
	return Placement{Pos: p, Loc: t.LocalityOf(p)}
}

// LocalityOf bins a point to its nearest landmark.
func (t *Topology) LocalityOf(p Point) Locality {
	best, bestD := Locality(0), math.Inf(1)
	for i, lm := range t.landmarks {
		if d := p.Dist(lm); d < bestD {
			best, bestD = Locality(i), d
		}
	}
	return best
}

// Latency returns the one-way latency in simulated milliseconds between
// two points. It is symmetric and deterministic: an affine function of
// Euclidean distance clamped into [MinLatency, MaxLatency].
func (t *Topology) Latency(a, b Point) int64 {
	d := a.Dist(b)
	ms := int64(math.Round(float64(t.cfg.MinLatency) + d*t.cfg.LatencyScale))
	if ms < t.cfg.MinLatency {
		ms = t.cfg.MinLatency
	}
	if ms > t.cfg.MaxLatency {
		ms = t.cfg.MaxLatency
	}
	return ms
}
