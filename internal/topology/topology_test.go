package topology

import (
	"testing"
	"testing/quick"

	"flowercdn/internal/rnd"
)

func newTestTopo(t *testing.T) *Topology {
	t.Helper()
	topo, err := New(DefaultConfig(), rnd.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewValidation(t *testing.T) {
	rng := rnd.New(1)
	cases := []Config{
		{Localities: 0, MinLatency: 10, MaxLatency: 500, LatencyScale: 300},
		{Localities: 6, MinLatency: -1, MaxLatency: 500, LatencyScale: 300},
		{Localities: 6, MinLatency: 100, MaxLatency: 50, LatencyScale: 300},
		{Localities: 6, MinLatency: 10, MaxLatency: 500, LatencyScale: 0},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, rng); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig(), rng); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestLandmarkCount(t *testing.T) {
	for _, k := range []int{1, 2, 3, 6, 7, 16} {
		cfg := DefaultConfig()
		cfg.Localities = k
		topo, err := New(cfg, rnd.New(2))
		if err != nil {
			t.Fatal(err)
		}
		if topo.Localities() != k {
			t.Fatalf("Localities() = %d, want %d", topo.Localities(), k)
		}
		for l := 0; l < k; l++ {
			p := topo.Landmark(Locality(l))
			if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
				t.Fatalf("landmark %d outside unit square: %+v", l, p)
			}
		}
	}
}

func TestLatencyBounds(t *testing.T) {
	topo := newTestTopo(t)
	rng := rnd.New(3)
	for i := 0; i < 5000; i++ {
		a := Point{rng.Float64(), rng.Float64()}
		b := Point{rng.Float64(), rng.Float64()}
		l := topo.Latency(a, b)
		if l < 10 || l > 500 {
			t.Fatalf("latency %d outside [10,500] for %+v %+v", l, a, b)
		}
	}
}

func TestLatencySymmetricAndReflexiveMin(t *testing.T) {
	topo := newTestTopo(t)
	f := func(ax, ay, bx, by uint16) bool {
		a := Point{float64(ax) / 65535, float64(ay) / 65535}
		b := Point{float64(bx) / 65535, float64(by) / 65535}
		return topo.Latency(a, b) == topo.Latency(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	p := Point{0.3, 0.7}
	if got := topo.Latency(p, p); got != 10 {
		t.Fatalf("self latency = %d, want MinLatency 10", got)
	}
}

func TestLatencyMonotoneInDistance(t *testing.T) {
	topo := newTestTopo(t)
	a := Point{0, 0}
	prev := int64(0)
	for d := 0.0; d <= 1.4; d += 0.05 {
		l := topo.Latency(a, Point{clamp01(d), clamp01(d)})
		if l < prev {
			t.Fatalf("latency decreased with distance: %d after %d", l, prev)
		}
		prev = l
	}
}

func TestIntraVsInterLocalityLatency(t *testing.T) {
	topo := newTestTopo(t)
	rng := rnd.New(4)
	var intraSum, interSum float64
	var intraN, interN int
	places := make([]Placement, 600)
	for i := range places {
		places[i] = topo.Place(rng)
	}
	for i := 0; i < len(places); i++ {
		for j := i + 1; j < len(places); j++ {
			l := float64(topo.Latency(places[i].Pos, places[j].Pos))
			if places[i].Loc == places[j].Loc {
				intraSum += l
				intraN++
			} else {
				interSum += l
				interN++
			}
		}
	}
	if intraN == 0 || interN == 0 {
		t.Fatal("degenerate placement distribution")
	}
	intra, inter := intraSum/float64(intraN), interSum/float64(interN)
	if intra >= inter/2 {
		t.Fatalf("intra-locality latency %.1f should be well below inter %.1f", intra, inter)
	}
	if intra > 100 {
		t.Fatalf("mean intra-locality latency %.1f ms too high for locality gains", intra)
	}
}

func TestPlaceAssignsNearestLandmark(t *testing.T) {
	topo := newTestTopo(t)
	rng := rnd.New(5)
	for i := 0; i < 1000; i++ {
		pl := topo.Place(rng)
		want := topo.LocalityOf(pl.Pos)
		if pl.Loc != want {
			t.Fatalf("placement locality %d != nearest landmark %d", pl.Loc, want)
		}
	}
}

func TestPlaceAtTargetsLandmark(t *testing.T) {
	topo := newTestTopo(t)
	rng := rnd.New(6)
	// The vast majority of placements targeted at landmark l should be
	// binned to l (Gaussian noise occasionally crosses the boundary).
	hits, n := 0, 2000
	for i := 0; i < n; i++ {
		l := Locality(i % topo.Localities())
		if topo.PlaceAt(l, rng).Loc == l {
			hits++
		}
	}
	if float64(hits)/float64(n) < 0.9 {
		t.Fatalf("only %d/%d targeted placements landed in their locality", hits, n)
	}
}

func TestPlaceAtOutOfRangePanics(t *testing.T) {
	topo := newTestTopo(t)
	defer func() {
		if recover() == nil {
			t.Fatal("PlaceAt with bad locality did not panic")
		}
	}()
	topo.PlaceAt(Locality(99), rnd.New(7))
}

func TestPlacementsCoverAllLocalities(t *testing.T) {
	topo := newTestTopo(t)
	rng := rnd.New(8)
	seen := map[Locality]int{}
	for i := 0; i < 3000; i++ {
		seen[topo.Place(rng).Loc]++
	}
	if len(seen) != topo.Localities() {
		t.Fatalf("placements covered %d localities, want %d", len(seen), topo.Localities())
	}
	for l, n := range seen {
		if n < 200 {
			t.Fatalf("locality %d underpopulated: %d of 3000", l, n)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	build := func() []Point {
		topo := MustNew(DefaultConfig(), rnd.New(42))
		pts := make([]Point, topo.Localities())
		for i := range pts {
			pts[i] = topo.Landmark(Locality(i))
		}
		return pts
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("landmark layout not deterministic for fixed seed")
		}
	}
}
