// Package prof wraps runtime/pprof for the command-line tools: a CPU
// profile spanning a run and an end-of-run heap profile, each gated on
// a path being set. The profiling workflow lives here so flowersim and
// flowerbench expose identical -cpuprofile/-memprofile semantics.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins writing a CPU profile to path and returns the stop
// function that finishes it. An empty path is a no-op (the returned
// stop is still safe to call).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path after a forced GC, so the
// profile shows live retention rather than garbage awaiting collection.
// An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: create heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: write heap profile: %w", err)
	}
	return nil
}
