package workload

import (
	"flowercdn/internal/rnd"
	"flowercdn/internal/runtime"
	"fmt"

	"flowercdn/internal/content"
	"flowercdn/internal/topology"
)

// Config mirrors the workload rows of the paper's Table 1.
type Config struct {
	// Sites is |W|, the number of supported websites (paper: 100).
	Sites int
	// ObjectsPerSite is the per-site catalog size (paper: 500).
	ObjectsPerSite int
	// ActiveSites restricts query generation: only peers interested in
	// the first ActiveSites websites submit queries; all others are
	// involved only in churn and maintenance (paper: 6 active of 100).
	ActiveSites int
	// QueryMeanInterval is the mean time between queries at an active
	// peer (paper: 1 query every 6 minutes).
	QueryMeanInterval int64
	// ZipfAlpha is the object-popularity exponent (Breslau et al.
	// measure 0.64–0.83 for web traces; 0.8 is our default).
	ZipfAlpha float64
	// InterestSkew biases which website a peer is assigned interest in:
	// 0 (the paper's setting) is uniform over |W|; larger values
	// Zipf-concentrate interest into low-index sites (exponent =
	// InterestSkew), so site 0 becomes a hot site most of the
	// population cares about — the flash-crowd situation.
	InterestSkew float64
}

// DefaultConfig returns Table 1's workload parameters.
func DefaultConfig() Config {
	return Config{
		Sites:             100,
		ObjectsPerSite:    500,
		ActiveSites:       6,
		QueryMeanInterval: 6 * runtime.Minute,
		ZipfAlpha:         0.8,
	}
}

// Workload owns the catalog, the popularity distribution and interest
// assignment for one run.
type Workload struct {
	cfg     Config
	catalog *content.Catalog
	zipf    *Zipf
	// interest is nil when InterestSkew == 0 (uniform assignment).
	interest *Zipf
}

// Validate checks the full workload configuration. It is also what
// upstream config validation (harness, sweep specs) calls to reject a
// bad workload before any simulation work starts.
func (c Config) Validate() error {
	if c.Sites < 1 {
		return fmt.Errorf("workload: need at least 1 site, got %d", c.Sites)
	}
	if c.ObjectsPerSite < 1 {
		return fmt.Errorf("workload: need at least 1 object per site, got %d", c.ObjectsPerSite)
	}
	if c.ActiveSites < 1 || c.ActiveSites > c.Sites {
		return fmt.Errorf("workload: active sites %d out of [1, %d]", c.ActiveSites, c.Sites)
	}
	if c.QueryMeanInterval <= 0 {
		return fmt.Errorf("workload: non-positive query interval %d", c.QueryMeanInterval)
	}
	if c.ZipfAlpha < 0 {
		return fmt.Errorf("workload: negative zipf exponent %g", c.ZipfAlpha)
	}
	if c.InterestSkew < 0 {
		return fmt.Errorf("workload: negative interest skew %g", c.InterestSkew)
	}
	return nil
}

// New validates cfg and builds the workload.
func New(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cat, err := content.NewCatalog(cfg.Sites, cfg.ObjectsPerSite)
	if err != nil {
		return nil, err
	}
	z, err := NewZipf(cfg.ObjectsPerSite, cfg.ZipfAlpha)
	if err != nil {
		return nil, err
	}
	w := &Workload{cfg: cfg, catalog: cat, zipf: z}
	if cfg.InterestSkew > 0 {
		if w.interest, err = NewZipf(cfg.Sites, cfg.InterestSkew); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Config returns the configuration.
func (w *Workload) Config() Config { return w.cfg }

// Catalog returns the content catalog.
func (w *Workload) Catalog() *content.Catalog { return w.catalog }

// AssignInterest draws the website a new peer is interested in:
// uniformly over W by default (paper: "each peer is randomly assigned a
// website from |W| to which it has interest throughout the
// experiment"), Zipf-weighted toward low-index sites when InterestSkew
// is set.
func (w *Workload) AssignInterest(rng *rnd.RNG) content.SiteID {
	if w.interest != nil {
		return content.SiteID(w.interest.Rank(rng))
	}
	return content.SiteID(rng.Intn(w.cfg.Sites))
}

// Active reports whether queries are generated for the given site.
func (w *Workload) Active(site content.SiteID) bool {
	return int(site) < w.cfg.ActiveSites
}

// NextQueryDelay draws the exponential gap to a peer's next query.
func (w *Workload) NextQueryDelay(rng *rnd.RNG) int64 {
	return rng.ExpDuration(w.cfg.QueryMeanInterval)
}

// FirstQueryDelay draws the de-phasing delay before a freshly arrived
// peer's first action (first query, or first petal-membership request):
// uniform in [0, 30 s), capped at the mean query interval so
// compressed-timescale runs (the realtime demo squeezes the paper's
// hours into seconds) still act promptly. At the paper's settings the
// cap never binds and the draw is identical to the historical 30 s
// de-phase.
func (w *Workload) FirstQueryDelay(rng *rnd.RNG) int64 {
	d := 30 * runtime.Second
	if w.cfg.QueryMeanInterval < d {
		d = w.cfg.QueryMeanInterval
	}
	return rng.UniformDuration(0, d)
}

// PickObject draws the object for a peer's next query: Zipf-popular
// objects of its site, skipping anything the peer already caches (the
// paper's peers "only pose queries for objects unavailable in local
// storage"). It returns false when the peer caches the entire site
// catalog and therefore has nothing left to request.
func (w *Workload) PickObject(rng *rnd.RNG, site content.SiteID, store *content.Store) (content.Key, bool) {
	n := w.cfg.ObjectsPerSite
	if store.Len() >= n {
		return content.Key{}, false
	}
	// Rejection sampling over the Zipf draw: with up to ~30-peer petals
	// and 500-object catalogs, stores stay small relative to the
	// catalog, so a handful of draws almost always suffices. Fall back
	// to a popularity-ordered scan if the peer is close to complete.
	for attempt := 0; attempt < 24; attempt++ {
		k := content.Key{Site: site, Object: content.ObjectID(w.zipf.Rank(rng))}
		if !store.Has(k) {
			return k, true
		}
	}
	for rank := 0; rank < n; rank++ {
		k := content.Key{Site: site, Object: content.ObjectID(rank)}
		if !store.Has(k) {
			return k, true
		}
	}
	return content.Key{}, false
}

// originServer is the trivially-available web server for one site. It
// answers any request affirmatively; origins never fail and are not
// P2P participants — they are the infrastructure the P2P CDN relieves.
type originServer struct {
	site content.SiteID
}

func init() {
	// Fetches cross process boundaries on the socket backend.
	runtime.RegisterWireType(FetchReq{}, FetchResp{})
}

// FetchReq asks an origin (or a content peer — protocols reuse it) for
// an object.
type FetchReq struct {
	Key content.Key
}

// FetchResp acknowledges a fetch. Served reports whether the provider
// actually had the object; origins always do, content peers may not
// (stale summary, Bloom false positive).
type FetchResp struct {
	Key    content.Key
	Served bool
}

// WireBytes sizes a fetch response as a small web object (the simulator
// models latency only, but byte accounting still distinguishes object
// transfers from control traffic).
func (FetchResp) WireBytes() int { return 8 * 1024 }

func (o *originServer) HandleMessage(runtime.NodeID, any) {}

func (o *originServer) HandleRequest(_ runtime.NodeID, req any) (any, error) {
	switch r := req.(type) {
	case FetchReq:
		return FetchResp{Key: r.Key, Served: true}, nil
	default:
		return nil, fmt.Errorf("workload: origin got unexpected request %T", req)
	}
}

// Origins places one origin server per website at a uniformly random
// topology point (paper websites are "under-provisioned" external
// servers with no locality relationship to any petal).
type Origins struct {
	nodes []runtime.NodeID
}

// NewOrigins registers all origin servers on the network.
func NewOrigins(w *Workload, net runtime.Transport, rng *rnd.RNG) *Origins {
	o := &Origins{nodes: make([]runtime.NodeID, w.cfg.Sites)}
	for s := 0; s < w.cfg.Sites; s++ {
		pos := topology.Point{X: rng.Float64(), Y: rng.Float64()}
		pl := topology.Placement{Pos: pos, Loc: net.Topology().LocalityOf(pos)}
		o.nodes[s] = net.Join(&originServer{site: content.SiteID(s)}, pl)
	}
	return o
}

// Node returns the origin server for a site.
func (o *Origins) Node(site content.SiteID) runtime.NodeID {
	return o.nodes[site]
}
