package workload

import (
	"flowercdn/internal/content"
	"flowercdn/internal/runtime"
)

// Binary wire marshallers for the fetch RPC.

func (m FetchReq) AppendWire(w *runtime.WireWriter) { m.Key.AppendWire(w) }

func (FetchReq) DecodeWire(r *runtime.WireReader) any {
	return FetchReq{Key: content.DecodeKeyWire(r)}
}

func (m FetchResp) AppendWire(w *runtime.WireWriter) {
	m.Key.AppendWire(w)
	w.Bool(m.Served)
}

func (FetchResp) DecodeWire(r *runtime.WireReader) any {
	var m FetchResp
	m.Key = content.DecodeKeyWire(r)
	m.Served = r.Bool()
	return m
}
