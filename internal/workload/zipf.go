// Package workload generates the paper's synthetic query workload
// (Sec. 6.1): |W| websites of 500 requestable objects each, Zipf-like
// object popularity within a site (Breslau et al. [2]), a per-peer
// query process of one query every 6 minutes on average, restricted to
// a small set of "active" websites, plus the origin web servers that
// serve misses.
package workload

import (
	"fmt"
	"math"
	"sort"

	"flowercdn/internal/rnd"
)

// Zipf draws ranks 0..n-1 with probability proportional to
// 1/(rank+1)^alpha. Breslau et al. report web request streams follow a
// Zipf-like distribution with alpha around 0.6–0.9; the paper's Table 1
// applies "Zipf distribution for object requests". Draws use a
// precomputed CDF and binary search, which is exact and fast for the
// 500-object catalogs used here.
type Zipf struct {
	cdf   []float64
	alpha float64
}

// NewZipf builds the distribution. n must be positive; alpha may be 0
// (uniform) or positive.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf over %d ranks", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("workload: negative zipf exponent %g", alpha)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1.0 // guard against rounding
	return &Zipf{cdf: cdf, alpha: alpha}, nil
}

// Rank draws a rank in [0, n).
func (z *Zipf) Rank(rng *rnd.RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Alpha returns the exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
