package workload

import (
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/wiretest"
)

func TestWireRoundTrips(t *testing.T) {
	k := content.Key{Site: 2, Object: 31}
	wiretest.RoundTrip(t, FetchReq{Key: k})
	wiretest.RoundTrip(t, FetchResp{Key: k, Served: true})
	wiretest.RoundTrip(t, FetchResp{Key: k})
}
