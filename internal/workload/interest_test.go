package workload

import (
	"testing"

	"flowercdn/internal/sim"
)

func TestAssignInterestUniformByDefault(t *testing.T) {
	w, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	counts := make(map[int]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[int(w.AssignInterest(rng))]++
	}
	// Site 0 should get roughly 1/|W| of assignments.
	want := draws / w.Config().Sites
	if c := counts[0]; c < want/2 || c > want*2 {
		t.Fatalf("uniform interest: site 0 got %d of %d, want ~%d", counts[0], draws, want)
	}
}

func TestAssignInterestSkewConcentrates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterestSkew = 2.0
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	counts := make(map[int]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[int(w.AssignInterest(rng))]++
	}
	// At skew 2 over 100 sites, site 0 holds ~61% of the mass.
	if frac := float64(counts[0]) / draws; frac < 0.5 {
		t.Fatalf("skewed interest: site 0 got %.2f, want > 0.5", frac)
	}
	if counts[0] <= counts[1] {
		t.Fatalf("site 0 (%d) not hotter than site 1 (%d)", counts[0], counts[1])
	}
}

func TestNegativeInterestSkewRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterestSkew = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative interest skew accepted")
	}
}
