package workload

import (
	"math"

	"flowercdn/internal/content"
)

// Synthetic web-object sizes for the byte-cost cache policies. The
// paper models latency only; byte accounting sizes every fetched
// object at 8 KiB (FetchResp.WireBytes). The size-aware eviction
// policy needs per-object variety, so objects draw from a heavy-tailed
// (Pareto) distribution with the same 8 KiB mean, derived by hashing
// the key: sizes are a pure function of the object name — identical
// across peers, runs and processes, and uncorrelated with the
// popularity rank (rank is the object ID, the hash scrambles it).

// MeanObjectBytes is the mean of the object-size distribution, equal
// to the flat per-object transfer size the byte accounting already
// charges. Byte-cost policies size their budget as
// capacity-in-objects * MeanObjectBytes, so one "cache-capacity" knob
// stays comparable across policies.
const MeanObjectBytes = 8 * 1024

const (
	// minObjectBytes is the Pareto scale: with shape 2 the mean is
	// 2 * min = MeanObjectBytes.
	minObjectBytes = MeanObjectBytes / 2
	// maxObjectBytes caps the tail at 1 MiB (exceeded with
	// probability ~1.5e-5; the cap's effect on the mean is
	// negligible).
	maxObjectBytes = 1 << 20
)

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// 64-bit hash for turning packed keys into uniform draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ObjectBytes returns the deterministic synthetic size of one object:
// Pareto(shape 2, min 4 KiB), mean 8 KiB, capped at 1 MiB.
func ObjectBytes(k content.Key) int64 {
	// Uniform u in [0, 1) from the top 53 bits of the hash.
	u := float64(splitmix64(k.Uint64())>>11) / (1 << 53)
	// Inverse-CDF Pareto with shape 2: min / sqrt(1-u). Integer sqrt
	// via float64 is exact enough; 1-u is never 0 because u < 1.
	size := int64(float64(minObjectBytes) / math.Sqrt(1-u))
	if size > maxObjectBytes {
		size = maxObjectBytes
	}
	if size < minObjectBytes {
		size = minObjectBytes
	}
	return size
}
