package workload

import (
	"testing"

	"flowercdn/internal/content"
)

func TestObjectBytesDeterministicAndBounded(t *testing.T) {
	for site := 0; site < 4; site++ {
		for obj := 0; obj < 500; obj++ {
			k := content.Key{Site: content.SiteID(site), Object: content.ObjectID(obj)}
			a, b := ObjectBytes(k), ObjectBytes(k)
			if a != b {
				t.Fatalf("ObjectBytes(%v) not deterministic: %d vs %d", k, a, b)
			}
			if a < minObjectBytes || a > maxObjectBytes {
				t.Fatalf("ObjectBytes(%v) = %d out of [%d, %d]", k, a, minObjectBytes, maxObjectBytes)
			}
		}
	}
}

func TestObjectBytesMeanNearTarget(t *testing.T) {
	// Empirical mean over a big catalog must land near the advertised
	// MeanObjectBytes (the tail cap shaves a little off; ±15% is the
	// tolerance).
	var sum int64
	n := 0
	for site := 0; site < 100; site++ {
		for obj := 0; obj < 500; obj++ {
			sum += ObjectBytes(content.Key{Site: content.SiteID(site), Object: content.ObjectID(obj)})
			n++
		}
	}
	mean := float64(sum) / float64(n)
	if mean < 0.85*MeanObjectBytes || mean > 1.15*MeanObjectBytes {
		t.Fatalf("empirical mean %.0f B too far from %d B", mean, MeanObjectBytes)
	}
}

func TestObjectBytesVaries(t *testing.T) {
	// A heavy-tailed size model that returned the same size everywhere
	// would make size-aware eviction vacuous.
	seen := map[int64]bool{}
	for obj := 0; obj < 200; obj++ {
		seen[ObjectBytes(content.Key{Site: 0, Object: content.ObjectID(obj)})] = true
	}
	if len(seen) < 50 {
		t.Fatalf("only %d distinct sizes over 200 objects", len(seen))
	}
}
