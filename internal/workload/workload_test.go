package workload

import (
	"math"
	"testing"

	"flowercdn/internal/content"
	"flowercdn/internal/sim"
	"flowercdn/internal/simnet"
	"flowercdn/internal/topology"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.8); err == nil {
		t.Fatal("zipf over 0 ranks accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	z, err := NewZipf(500, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(500) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z, _ := NewZipf(100, 0.8)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("popularity not decreasing at rank %d", i)
		}
	}
}

func TestZipfEmpiricalSkew(t *testing.T) {
	z, _ := NewZipf(500, 0.8)
	rng := sim.NewRNG(1)
	counts := make([]int, 500)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Rank(rng)]++
	}
	// Rank 0 should receive ~Prob(0) of draws.
	got := float64(counts[0]) / n
	want := z.Prob(0)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("rank 0 frequency %.4f, want ~%.4f", got, want)
	}
	// Top-10 share must dominate a uniform share.
	top := 0
	for i := 0; i < 10; i++ {
		top += counts[i]
	}
	if float64(top)/n < 3*10.0/500.0 {
		t.Fatalf("top-10 share %.3f not skewed enough", float64(top)/n)
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	z, _ := NewZipf(50, 0)
	for i := 0; i < 50; i++ {
		if math.Abs(z.Prob(i)-0.02) > 1e-9 {
			t.Fatalf("alpha=0 rank %d prob %g, want 0.02", i, z.Prob(i))
		}
	}
}

func TestZipfRankInBounds(t *testing.T) {
	z, _ := NewZipf(7, 1.2)
	rng := sim.NewRNG(2)
	for i := 0; i < 10000; i++ {
		r := z.Rank(rng)
		if r < 0 || r >= 7 {
			t.Fatalf("rank %d out of bounds", r)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []Config{
		{Sites: 100, ObjectsPerSite: 500, ActiveSites: 0, QueryMeanInterval: 1, ZipfAlpha: 0.8},
		{Sites: 100, ObjectsPerSite: 500, ActiveSites: 101, QueryMeanInterval: 1, ZipfAlpha: 0.8},
		{Sites: 100, ObjectsPerSite: 500, ActiveSites: 6, QueryMeanInterval: 0, ZipfAlpha: 0.8},
		{Sites: 0, ObjectsPerSite: 500, ActiveSites: 1, QueryMeanInterval: 1, ZipfAlpha: 0.8},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestAssignInterestCoversAllSites(t *testing.T) {
	w, _ := New(DefaultConfig())
	rng := sim.NewRNG(3)
	seen := map[content.SiteID]bool{}
	for i := 0; i < 20000; i++ {
		s := w.AssignInterest(rng)
		if int(s) < 0 || int(s) >= 100 {
			t.Fatalf("interest %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) != 100 {
		t.Fatalf("interest covered %d sites, want 100", len(seen))
	}
}

func TestActiveSites(t *testing.T) {
	w, _ := New(DefaultConfig())
	for s := 0; s < 6; s++ {
		if !w.Active(content.SiteID(s)) {
			t.Fatalf("site %d should be active", s)
		}
	}
	for _, s := range []int{6, 50, 99} {
		if w.Active(content.SiteID(s)) {
			t.Fatalf("site %d should be inactive", s)
		}
	}
}

func TestNextQueryDelayMean(t *testing.T) {
	w, _ := New(DefaultConfig())
	rng := sim.NewRNG(4)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(w.NextQueryDelay(rng))
	}
	mean := sum / n
	want := float64(6 * sim.Minute)
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean query gap %.0f, want ~%.0f", mean, want)
	}
}

func TestPickObjectSkipsOwned(t *testing.T) {
	w, _ := New(DefaultConfig())
	rng := sim.NewRNG(5)
	store := content.NewStore()
	// Own the 5 most popular objects; picks must avoid them.
	for i := 0; i < 5; i++ {
		store.Add(content.Key{Site: 0, Object: content.ObjectID(i)})
	}
	for i := 0; i < 2000; i++ {
		k, ok := w.PickObject(rng, 0, store)
		if !ok {
			t.Fatal("PickObject gave up with catalog mostly unowned")
		}
		if store.Has(k) {
			t.Fatalf("picked owned object %v", k)
		}
		if k.Site != 0 {
			t.Fatalf("picked wrong site %v", k)
		}
	}
}

func TestPickObjectExhaustedCatalog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ObjectsPerSite = 10
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(6)
	store := content.NewStore()
	for i := 0; i < 10; i++ {
		store.Add(content.Key{Site: 2, Object: content.ObjectID(i)})
	}
	if _, ok := w.PickObject(rng, 2, store); ok {
		t.Fatal("PickObject returned an object from an exhausted catalog")
	}
	// One object short of complete must still find the gap via scan.
	store2 := content.NewStore()
	for i := 0; i < 9; i++ {
		store2.Add(content.Key{Site: 2, Object: content.ObjectID(i)})
	}
	k, ok := w.PickObject(rng, 2, store2)
	if !ok || k.Object != 9 {
		t.Fatalf("PickObject near-complete = %v %v, want object 9", k, ok)
	}
}

func TestOriginsServeEverything(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	topo := topology.MustNew(topology.DefaultConfig(), rng)
	net := simnet.New(eng.Clock(), topo)
	w, _ := New(DefaultConfig())
	origins := NewOrigins(w, net, rng)

	if net.TotalJoined() != 100 {
		t.Fatalf("expected 100 origin nodes, got %d", net.TotalJoined())
	}
	// A client node fetches from an origin.
	client := net.Join(clientStub{}, topo.Place(rng))
	var got FetchResp
	net.Request(client, origins.Node(7), FetchReq{Key: content.Key{Site: 7, Object: 3}}, 0,
		func(resp any, err error) {
			if err != nil {
				t.Errorf("origin fetch failed: %v", err)
				return
			}
			got = resp.(FetchResp)
		})
	eng.RunAll()
	if !got.Served || got.Key != (content.Key{Site: 7, Object: 3}) {
		t.Fatalf("origin response %+v", got)
	}
}

func TestOriginRejectsJunk(t *testing.T) {
	o := &originServer{site: 1}
	if _, err := o.HandleRequest(0, "junk"); err == nil {
		t.Fatal("origin accepted junk request")
	}
}

type clientStub struct{}

func (clientStub) HandleMessage(simnet.NodeID, any) {}
func (clientStub) HandleRequest(simnet.NodeID, any) (any, error) {
	return nil, nil
}
