# Developer entry points. CI runs the same targets (see
# .github/workflows/ci.yml), so a green `make check bench-smoke` locally
# predicts a green pipeline.

# pipefail: the bench targets pipe `go test` into benchjson, and a
# benchmark failure must fail the target, not vanish behind the
# pipe's last exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

PR ?= 10
BENCH_JSON := BENCH_PR$(PR).json

.PHONY: build test race vet fmt check bench bench-smoke bench-delta bigcell-smoke fingerprint-check realtime-smoke cache-grid-smoke socket-smoke codec-smoke invariants-smoke trace-smoke fuzz-smoke dist-smoke docs-check staticcheck clean

build:
	go build ./...

test:
	go test ./...

# race runs the suite under the race detector — the sweep fan-out, the
# wall-clock run loops and the socket reader goroutines are the
# concurrency that matters. The raised -timeout covers the harness
# package's simulation suite, which can exceed go test's 10-minute
# per-package default under the race detector on slow machines.
race:
	go test -race -timeout 40m ./...

vet:
	go vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

check: fmt vet build test

# bench runs the full benchmark suite and records the trajectory file
# for this PR (BENCH_PR$(PR).json): every table/figure regeneration
# bench with its headline custom metrics, plus the engine
# microbenchmarks. Takes a few minutes.
bench:
	go test -run '^$$' -bench . -benchmem ./... | tee /dev/stderr | go run ./cmd/benchjson > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# bench-delta diffs this PR's committed trajectory against the
# previous PR's: per-benchmark ns/op and allocs/op movement, slowdowns
# past 10% flagged (informational — trajectory files may come from
# different machines) — plus the machine-portable memory metrics
# (bytes/node, allocs/query), which ARE a gate: a >20% regression
# exits non-zero. BENCH_DELTA_WARN_ONLY=1 downgrades the gate to a
# warning for PRs that intentionally trade memory away.
PREV_PR ?= $(shell echo $$(( $(PR) - 1 )))
bench-delta:
	go run ./cmd/benchjson -delta BENCH_PR$(PREV_PR).json $(BENCH_JSON)

# bench-smoke is the CI-sized slice: one iteration of the cheap
# benchmarks, just enough to catch rot in the bench harness itself.
bench-smoke:
	go test -run '^$$' -bench 'BenchmarkSchedule|BenchmarkPeriodic|BenchmarkEngine|BenchmarkTable1' -benchtime 1x -benchmem ./... | go run ./cmd/benchjson

# bigcell-smoke exercises the big-cell scale path at CI size: one
# process hosting a 50k-node cell for one simulated hour on the sim
# backend — petal-structured flower (every peer in a locality petal,
# ~100 directory nodes on the ring) and koorde-global (every peer in
# one global overlay, the memory-hostile extreme). Each run prints
# live-heap bytes/node; the 4 KiB/node budget itself is enforced at
# P=100k by BenchmarkBigCell (see `make bench`), which `make race`
# excludes via a build tag.
bigcell-smoke:
	go run ./cmd/flowersim -p 50000 -hours 1 -protocol flower -measure-mem
	go run ./cmd/flowersim -p 50000 -hours 1 -protocol koorde-global -measure-mem

# fingerprint-check runs the same simulation cell in two separate
# processes and diffs the run fingerprints (FNV-1a over per-window
# query/transfer/message counts): any map-order nondeterminism feeding
# the event stream shows up as a mismatch here, mechanically.
fingerprint-check:
	@fp1=$$(go run ./cmd/flowersim -p 200 -hours 4 -print-fingerprint); 	fp2=$$(go run ./cmd/flowersim -p 200 -hours 4 -print-fingerprint); 	echo "process 1: $$fp1"; echo "process 2: $$fp2"; 	if [ "$$fp1" != "$$fp2" ]; then 		echo "FINGERPRINT MISMATCH: runs are not deterministic across processes" >&2; exit 1; 	fi; echo "fingerprints match"

# realtime-smoke drives the wall-clock backend for a few seconds of real
# time: the identical protocol code over real timers and the loopback
# transport, printing live per-window stats.
realtime-smoke:
	go run ./cmd/flowersim -backend realtime -population 50 -horizon 3s

# socket-smoke runs one population across three cooperating OS
# processes on the socket backend: real TCP between peer groups, live
# queries answered in every process, clean shutdown. Each child exits
# non-zero unless its queries were answered, and the parent propagates
# any failure, so this is the full distributed-deployment assertion in
# one command.
socket-smoke:
	go run ./cmd/flowersim -backend socket -spawn-local 3 -population 50 -horizon 6s

# codec-smoke is socket-smoke under the hand-rolled binary wire codec:
# the same 3-process TCP population, every payload moving through the
# per-type marshallers and the write-side batching path instead of gob.
codec-smoke:
	go run ./cmd/flowersim -backend socket -spawn-local 3 -population 50 -horizon 6s -codec binary

# staticcheck runs the pinned version through `go run`, so CI and local
# invocations cannot drift (CI calls this same target). Needs network
# on first run to fetch the tool.
STATICCHECK_VERSION := 2025.1.1
staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# invariants-smoke runs the ring-correctness oracle: every ring-based
# protocol (flower, squirrel, chord-global, koorde-global) checked
# against Zave's structural invariants — ordered ring, one ring,
# connected appendages, valid de Bruijn pointers — at checkpoints
# through four adversarial churn schedules on the deterministic
# backend. This is the gate that keeps the latency numbers honest: a
# lookup can "succeed" off a malformed ring, but not past this target.
invariants-smoke:
	go test ./internal/harness/ -run 'TestRingInvariantsUnderChurn|TestChurnScheduleActuallyChurns' -count=1 -v

# trace-smoke exercises the per-query tracing surfaces end to end: a
# traced quick sim cell written as hop-level CSV, then a realtime run
# serving the live observability endpoint, probed over HTTP
# (/metrics and /traces) while the run is still in flight.
TRACE_OBS_ADDR ?= 127.0.0.1:7946
trace-smoke:
	go run ./cmd/flowersim -p 200 -hours 2 -trace-csv /tmp/trace-smoke.csv
	@test -s /tmp/trace-smoke.csv && head -3 /tmp/trace-smoke.csv
	go run ./cmd/flowersim -backend realtime -population 50 -horizon 5s \
		-trace-csv /dev/null -obs $(TRACE_OBS_ADDR) & pid=$$!; \
	sleep 3; \
	curl -sf http://$(TRACE_OBS_ADDR)/metrics; \
	curl -sf "http://$(TRACE_OBS_ADDR)/traces?n=2" > /dev/null; \
	wait $$pid
	@echo "trace-smoke OK"

# fuzz-smoke gives each fuzz target a short budget — enough for CI to
# catch a decoder panic or packing regression without open-ended fuzz
# time. Local deep fuzzing: raise -fuzztime on the same commands.
FUZZTIME ?= 10s
fuzz-smoke:
	go test ./internal/socknet/ -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME)
	go test ./internal/socknet/ -run '^$$' -fuzz FuzzBinaryFrameRoundTrip -fuzztime $(FUZZTIME)
	go test ./internal/socknet/ -run '^$$' -fuzz FuzzBinaryDecode -fuzztime $(FUZZTIME)
	go test ./internal/socknet/ -run '^$$' -fuzz FuzzFrameReadPrefix -fuzztime $(FUZZTIME)
	go test ./internal/dring/ -run '^$$' -fuzz FuzzPositionRoundTrip -fuzztime $(FUZZTIME)
	go test ./internal/trace/ -run '^$$' -fuzz FuzzRecordWire -fuzztime $(FUZZTIME)

# dist-smoke is the distributed-sweep equality gate: the same CI-sized
# grid runs once in-process and once sharded across a coordinator plus
# two spawned worker processes (resuming from a fresh out-dir), and the
# aggregate and per-window series CSVs must match byte for byte. This
# is the PR's headline invariant — distribution changes scheduling,
# never results.
DIST_TMP := /tmp/flowercdn-dist-smoke
dist-smoke:
	go build -o $(DIST_TMP)-bench ./cmd/flowerbench
	rm -rf $(DIST_TMP)-out
	$(DIST_TMP)-bench -grid compare -seeds 2 -p 100 \
		-csv $(DIST_TMP)-a.csv -series-csv $(DIST_TMP)-as.csv
	$(DIST_TMP)-bench -grid compare -seeds 2 -p 100 \
		-dist-coordinator 127.0.0.1:0 -spawn-workers 2 -out-dir $(DIST_TMP)-out \
		-csv $(DIST_TMP)-b.csv -series-csv $(DIST_TMP)-bs.csv
	cmp $(DIST_TMP)-a.csv $(DIST_TMP)-b.csv
	cmp $(DIST_TMP)-as.csv $(DIST_TMP)-bs.csv
	@echo "dist-smoke OK: distributed aggregates byte-identical to in-process"

# docs-check keeps the documentation surfaces honest: every internal
# package must open with a real godoc package comment, and the files
# the operator's manual links to must exist.
docs-check:
	@missing=0; for d in internal/*/; do \
		pkg=$$(basename $$d); \
		if ! grep -rlq "^// Package $$pkg" $$d*.go 2>/dev/null; then \
			echo "missing package comment: $$pkg" >&2; missing=1; fi; \
	done; [ $$missing -eq 0 ]
	@for f in docs/OPERATIONS.md docs/PAPER.md README.md ROADMAP.md; do \
		test -s $$f || { echo "missing doc: $$f" >&2; exit 1; }; done
	go vet ./...
	@echo "docs-check OK"

# cache-grid-smoke runs the CI-sized capacity grid under cache
# pressure: LRU-bounded peer stores swept over per-peer capacities with
# the unbounded reference cell — the hit-ratio knee the bounded model
# adds on top of the paper (see README "Cache policies").
cache-grid-smoke:
	go run ./cmd/flowerbench -grid capacity -scenario cache-pressure -seeds 1 -p 250

clean:
	rm -f BENCH_PR*.json.tmp
